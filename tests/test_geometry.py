"""Tests for L1 grid geometry (repro.core.geometry)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.geometry import (
    annulus_cells,
    annulus_size,
    ball_cells,
    ball_radius_from_index,
    ball_size,
    l1_distance,
    l1_norm,
    ring_cell_from_index,
    ring_cells,
    ring_cells_from_index_array,
    ring_size,
    sample_uniform_ball,
    sample_uniform_ring,
)


class TestCardinalities:
    @pytest.mark.parametrize("r", range(0, 30))
    def test_ball_size_closed_form(self, r):
        assert ball_size(r) == len(list(ball_cells(r)))

    @pytest.mark.parametrize("r", range(0, 30))
    def test_ring_size_closed_form(self, r):
        assert ring_size(r) == len(list(ring_cells(r)))

    def test_ball_is_disjoint_union_of_rings(self):
        assert ball_size(12) == sum(ring_size(r) for r in range(13))

    @pytest.mark.parametrize("inner,outer", [(0, 1), (3, 7), (10, 11)])
    def test_annulus_size(self, inner, outer):
        assert annulus_size(inner, outer) == len(list(annulus_cells(inner, outer)))

    def test_annulus_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            annulus_size(5, 3)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            ball_size(-1)
        with pytest.raises(ValueError):
            ring_size(-1)


class TestEnumeration:
    @pytest.mark.parametrize("r", [1, 2, 5, 13])
    def test_ring_cells_have_correct_norm(self, r):
        cells = list(ring_cells(r))
        assert all(l1_norm(x, y) == r for x, y in cells)
        assert len(set(cells)) == 4 * r

    @pytest.mark.parametrize("r", [0, 1, 4, 9])
    def test_ball_cells_unique_and_in_ball(self, r):
        cells = list(ball_cells(r))
        assert len(set(cells)) == ball_size(r)
        assert all(l1_norm(x, y) <= r for x, y in cells)

    def test_ring_cell_from_index_boundaries(self):
        assert ring_cell_from_index(3, 0) == (3, 0)
        assert ring_cell_from_index(3, 3) == (0, 3)
        assert ring_cell_from_index(3, 6) == (-3, 0)
        assert ring_cell_from_index(3, 9) == (0, -3)
        with pytest.raises(ValueError):
            ring_cell_from_index(3, 12)
        with pytest.raises(ValueError):
            ring_cell_from_index(0, 0)

    @pytest.mark.parametrize("r", [1, 2, 7])
    def test_vectorised_ring_cells_match_scalar(self, r):
        ms = np.arange(4 * r)
        rs = np.full(4 * r, r)
        xs, ys = ring_cells_from_index_array(rs, ms)
        for m in range(4 * r):
            assert (xs[m], ys[m]) == ring_cell_from_index(r, m)


class TestBallIndexInversion:
    def test_small_indices(self):
        assert ball_radius_from_index(0) == 0
        assert ball_radius_from_index(1) == 1
        assert ball_radius_from_index(4) == 1
        assert ball_radius_from_index(5) == 2

    @given(st.integers(0, 10**9))
    @settings(max_examples=300)
    def test_index_lands_in_ring_range(self, n):
        rho = ball_radius_from_index(n)
        lo = ball_size(rho - 1) if rho > 0 else 0
        assert lo <= n < ball_size(rho)


class TestUniformBallSampling:
    def test_samples_stay_in_ball(self):
        rng = np.random.default_rng(1)
        x, y = sample_uniform_ball(rng, 9, 20000)
        assert int(np.max(np.abs(x) + np.abs(y))) <= 9

    def test_zero_radius(self):
        rng = np.random.default_rng(2)
        x, y = sample_uniform_ball(rng, 0, 50)
        assert not np.any(x) and not np.any(y)

    def test_uniformity_chi_square(self):
        """Every cell of B(4) should be hit uniformly (chi-square, alpha=1e-3)."""
        rng = np.random.default_rng(3)
        radius = 4
        n = 82_000  # ~2000 per cell for |B(4)| = 41
        x, y = sample_uniform_ball(rng, radius, n)
        counts = {}
        for cell in zip(x.tolist(), y.tolist()):
            counts[cell] = counts.get(cell, 0) + 1
        assert len(counts) == ball_size(radius)
        observed = np.array(list(counts.values()))
        chi2 = ((observed - n / ball_size(radius)) ** 2 / (n / ball_size(radius))).sum()
        crit = stats.chi2.ppf(0.999, df=ball_size(radius) - 1)
        assert chi2 < crit

    def test_ring_marginal_matches_theory(self):
        """P(ring rho) must be ring_size(rho)/ball_size(R)."""
        rng = np.random.default_rng(4)
        radius, n = 6, 100_000
        x, y = sample_uniform_ball(rng, radius, n)
        norms = np.abs(x) + np.abs(y)
        for rho in range(radius + 1):
            expected = ring_size(rho) / ball_size(radius)
            observed = float(np.mean(norms == rho))
            assert observed == pytest.approx(expected, abs=4 * (expected / n) ** 0.5 + 2e-3)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            sample_uniform_ball(np.random.default_rng(0), -1, 10)


class TestUniformRingSampling:
    def test_samples_on_ring(self):
        rng = np.random.default_rng(5)
        x, y = sample_uniform_ring(rng, 7, 5000)
        assert np.all(np.abs(x) + np.abs(y) == 7)

    def test_all_cells_reachable(self):
        rng = np.random.default_rng(6)
        x, y = sample_uniform_ring(rng, 3, 4000)
        assert len(set(zip(x.tolist(), y.tolist()))) == 12

    def test_zero_radius_ring(self):
        x, y = sample_uniform_ring(np.random.default_rng(7), 0, 5)
        assert not np.any(x) and not np.any(y)


class TestDistances:
    @given(
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
    )
    @settings(max_examples=200)
    def test_metric_axioms(self, a, b, c):
        assert l1_distance(a, b) >= 0
        assert (l1_distance(a, b) == 0) == (a == b)
        assert l1_distance(a, b) == l1_distance(b, a)
        assert l1_distance(a, c) <= l1_distance(a, b) + l1_distance(b, c)

    def test_norm_is_distance_from_origin(self):
        assert l1_norm(3, -4) == l1_distance((0, 0), (3, -4)) == 7
