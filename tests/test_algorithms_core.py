"""Tests for the paper's algorithm classes (construction, schedules, programs)."""

import itertools

import numpy as np
import pytest

from repro.algorithms import (
    HarmonicSearch,
    HedgedApproxSearch,
    NaiveTrustSearch,
    NonUniformSearch,
    RestartingHarmonicSearch,
    RhoApproxSearch,
    UniformSearch,
    one_sided_guesses,
)
from repro.algorithms.base import UniformBallFamily
from repro.algorithms.harmonic import PowerLawRingFamily, harmonic_normalizing_constant


class TestUniformBallFamily:
    def test_sample_within_ball(self):
        family = UniformBallFamily(radius=6, budget=17)
        ux, uy, budgets = family.sample(np.random.default_rng(0), 500)
        assert int(np.max(np.abs(ux) + np.abs(uy))) <= 6
        assert np.all(budgets == 17)

    def test_sample_one(self):
        family = UniformBallFamily(radius=3, budget=9)
        (x, y), budget = family.sample_one(np.random.default_rng(1))
        assert abs(x) + abs(y) <= 3 and budget == 9

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            UniformBallFamily(0, 5)
        with pytest.raises(ValueError):
            UniformBallFamily(5, 0)


class TestNonUniformSearch:
    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            NonUniformSearch(k=0)

    def test_families_follow_schedule(self):
        alg = NonUniformSearch(k=4)
        fams = list(itertools.islice(alg.families(), 3))
        assert [f.radius for f in fams] == [2, 2, 4]
        assert [f.budget for f in fams] == [4, 4, 16]

    def test_uses_k_flag(self):
        assert NonUniformSearch(k=2).uses_k is True

    def test_step_program_starts_with_excursion(self):
        alg = NonUniformSearch(k=1)
        rng = np.random.default_rng(7)
        positions = list(itertools.islice(alg.step_program(rng), 50))
        # Unit moves throughout.
        prev = (0, 0)
        for pos in positions:
            assert abs(pos[0] - prev[0]) + abs(pos[1] - prev[1]) == 1
            prev = pos


class TestUniformSearch:
    def test_rejects_non_positive_eps(self):
        with pytest.raises(ValueError):
            UniformSearch(eps=0)

    def test_does_not_use_k(self):
        assert UniformSearch(0.3).uses_k is False

    def test_schedule_independent_of_agent_count(self):
        """Uniformity: the phase stream is a fixed function of eps alone."""
        a = [
            (f.radius, f.budget)
            for f in itertools.islice(UniformSearch(0.4).families(), 25)
        ]
        b = [
            (f.radius, f.budget)
            for f in itertools.islice(UniformSearch(0.4).families(), 25)
        ]
        assert a == b

    def test_describe_mentions_eps(self):
        assert "0.25" in UniformSearch(0.25).describe()


class TestApproximate:
    def test_rho_approx_effective_k(self):
        alg = RhoApproxSearch(k_a=32, rho=4)
        assert alg.effective_k == 8

    def test_rho_must_be_at_least_one(self):
        with pytest.raises(ValueError):
            RhoApproxSearch(k_a=8, rho=0.5)

    def test_rho_one_matches_nonuniform(self):
        a = RhoApproxSearch(k_a=16, rho=1)
        b = NonUniformSearch(k=16)
        fa = [(f.radius, f.budget) for f in itertools.islice(a.families(), 10)]
        fb = [(f.radius, f.budget) for f in itertools.islice(b.families(), 10)]
        assert fa == fb

    def test_one_sided_guesses_cover_range(self):
        guesses = one_sided_guesses(k_tilde=1024, eps=0.5)
        assert guesses[0] == pytest.approx(32.0)
        assert guesses[-1] == 1024.0
        # Consecutive guesses within factor 2 covers everything between.
        for lo, hi in zip(guesses, guesses[1:]):
            assert hi <= 2 * lo + 1e-9

    def test_one_sided_guesses_count_is_logarithmic(self):
        guesses = one_sided_guesses(k_tilde=2**20, eps=0.5)
        assert len(guesses) == 11  # eps * log2(k~) + 1 = 10 + 1

    def test_hedged_interleaves_guesses(self):
        alg = HedgedApproxSearch(k_tilde=256, eps=0.5)
        specs = list(itertools.islice(alg.phases(), len(alg.guesses)))
        seen = {spec.label[1] for spec in specs}
        assert seen == set(range(len(alg.guesses)))

    def test_naive_trust_budget_shrinks_with_estimate(self):
        big = NaiveTrustSearch(k_tilde=4096)
        small = NaiveTrustSearch(k_tilde=4)
        f_big = next(iter(big.families()))
        f_small = next(iter(small.families()))
        assert f_big.budget <= f_small.budget


class TestHarmonic:
    def test_normalizing_constant_sums_to_one(self):
        # sum over rings: 4r * c / r^(2+delta) = 1; the truncated sum plus
        # the integral tail estimate must hit 1.
        R = 200_000
        for delta in (0.2, 0.5, 0.8):
            c = harmonic_normalizing_constant(delta)
            partial = sum(4 * r * c / r ** (2 + delta) for r in range(1, R))
            tail = 4 * c * R ** (-delta) / delta  # integral upper estimate
            assert partial < 1.0
            assert partial + tail == pytest.approx(1.0, abs=2e-3)

    def test_family_radius_distribution_is_zipf(self):
        family = PowerLawRingFamily(delta=0.5)
        rng = np.random.default_rng(11)
        ux, uy, budgets = family.sample(rng, 200_000)
        radii = np.abs(ux) + np.abs(uy)
        assert int(radii.min()) >= 1
        from scipy.special import zeta

        p1 = float(np.mean(radii == 1))
        assert p1 == pytest.approx(1.0 / zeta(1.5), abs=0.01)
        p2 = float(np.mean(radii == 2))
        assert p2 == pytest.approx(2**-1.5 / zeta(1.5), abs=0.01)

    def test_budget_matches_radius_power(self):
        family = PowerLawRingFamily(delta=0.5)
        ux, uy, budgets = family.sample(np.random.default_rng(3), 1000)
        radii = np.abs(ux) + np.abs(uy)
        expected = np.ceil(radii.astype(float) ** 2.5)
        assert np.array_equal(budgets, expected.astype(np.int64))

    def test_one_shot_family_stream(self):
        assert len(list(HarmonicSearch(0.5).families())) == 1

    def test_restarting_family_stream_is_infinite(self):
        stream = RestartingHarmonicSearch(0.5).families()
        fams = list(itertools.islice(stream, 10))
        assert len(fams) == 10

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            HarmonicSearch(delta=0)
        with pytest.raises(ValueError):
            PowerLawRingFamily(delta=-0.1)

    def test_uniform_position_on_ring(self):
        """Conditioned on the radius, the cell must be uniform on the ring."""
        family = PowerLawRingFamily(delta=0.8)
        rng = np.random.default_rng(13)
        ux, uy, _ = family.sample(rng, 150_000)
        mask = (np.abs(ux) + np.abs(uy)) == 2
        cells = set(zip(ux[mask].tolist(), uy[mask].tolist()))
        assert len(cells) == 8
        # Rough uniformity across the 8 ring-2 cells.
        counts = {}
        for cell in zip(ux[mask].tolist(), uy[mask].tolist()):
            counts[cell] = counts.get(cell, 0) + 1
        values = np.array(list(counts.values()), dtype=float)
        assert values.min() > 0.7 * values.mean()
