"""R005 drift stand-in: what a hashed-field edit looks like.

The manifest rule is exercised against the real ``SweepSpec`` by
monkeypatching its dict in the tests; this file only documents the bug
shape (a new hashed field without a ``SPEC_VERSION`` bump) for readers
of the corpus.
"""


def to_dict(self):
    data = {
        "version": 2,  # <- unbumped while the dict below grew a knob
        "algorithm": self.algorithm,
        "new_knob": self.new_knob,
    }
    return data
