"""Seeded placement-seeding violations: the pre-``PLACEMENT_DRAW_STREAM`` shape.

``place_treasure("random")`` historically drew its ring sample from an
ad-hoc stream with no registered tag; routing placement through
``derive_rng(seed, PLACEMENT_DRAW_STREAM)`` put it under the same
R001/R003 coverage as every other draw.  This fixture pins both halves of
the old shape: an ambient stdlib draw standing in for untracked placement
randomness, and a bare-literal stream tag that bypasses the registry.
"""

import random

PLACEMENT_HACK_STREAM = 0x97ACE  # bare literal tag: R003


def place_random_legacy(distance):
    # Ambient placement draw (R001): not derivable from any spec seed.
    angle = random.uniform(0.0, 1.0)
    return distance, angle
