"""Seeded R004 violations: fault-tolerance state leaking into seeds/specs.

Fault plans, retry counters, degradation tiers, and checkpoint/resume
bookkeeping describe what *failed* during a run — deriving seeds or
spec fields from any of them would fork results between faulted and
clean executions, breaking chaos parity.
"""

from repro.sim.rng import derive_seed
from repro.sweep import SweepSpec


def seed_from_fault_plan(root: int, fault_plan) -> int:
    return derive_seed(root, fault_plan.seed)


def seed_from_retries(root: int, retries: int) -> int:
    return derive_seed(root, retries)


def seed_from_checkpoint(root: int, checkpoint: float) -> int:
    return derive_seed(root, int(checkpoint * 1000))


def spec_from_quarantine(quarantine) -> SweepSpec:
    return SweepSpec(
        algorithm="uniform",
        distances=(4,),
        ks=(1,),
        trials=8,
        seed=len(quarantine),
    )


def spec_from_journal(journal) -> SweepSpec:
    return SweepSpec(
        algorithm="uniform",
        distances=(4,),
        ks=(1,),
        trials=8,
        seed=journal.tasks,
    )
