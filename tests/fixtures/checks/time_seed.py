"""Seeded R001 violation: a seed derived from the wall clock."""

import time

from repro.sim.rng import make_rng


def clock_seeded_generator():
    return make_rng(int(time.time()))
