"""Seeded R004 violations: observability state leaking into seeds/specs.

Traces, metrics, and spans describe how a run executed — wall-clock,
scheduling, worker identity — so deriving seeds or spec fields from any
of them would make results depend on machine speed and load.
"""

from repro.sim.rng import derive_seed
from repro.sweep import SweepSpec


def seed_from_trace(root: int, trace) -> int:
    return derive_seed(root, len(trace))


def seed_from_metrics(root: int, metrics) -> int:
    return derive_seed(root, metrics.count("executor.complete"))


def seed_from_span(root: int, span: float) -> int:
    return derive_seed(root, int(span * 1000))


def spec_from_bus(bus) -> SweepSpec:
    return SweepSpec(
        algorithm="uniform",
        distances=(4,),
        ks=(1,),
        trials=8,
        seed=bus.seq,
    )


def spec_from_utilization(utilization: float) -> SweepSpec:
    return SweepSpec(
        algorithm="uniform",
        distances=(4,),
        ks=(1,),
        trials=8,
        seed=int(utilization * 100),
    )
