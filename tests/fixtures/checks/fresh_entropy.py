"""Seeded R002 violations: fresh-entropy Generators in engine code.

Linted with a forced ``sim/...`` relpath (the rule is scoped to the
engine/runner directories, which this corpus lives outside of).
"""

from numpy.random import default_rng

from repro.sim.rng import make_rng


def unseeded_generator():
    return default_rng()


def explicit_none_seed():
    return make_rng(None)
