"""Seeded R003 violations: stream-tag constants breaking registration."""

UNREGISTERED_STREAM = 0xDEAD


def register_stream(name, tag):  # stand-in so the module is self-contained
    return tag


ALPHA_STREAM = register_stream("ALPHA_STREAM", 0xA11CE)
BETA_STREAM = register_stream("BETA_STREAM", 0xA11CE)  # collides with ALPHA
GAMMA_STREAM = register_stream("MISNAMED_STREAM", 0x6A33A)
