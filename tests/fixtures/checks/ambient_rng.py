"""Seeded R001 violations: ambient/global randomness (never imported)."""

import random

import numpy as np


def ambient_numpy_draw() -> float:
    return float(np.random.normal())


def ambient_numpy_seed() -> None:
    np.random.seed(1234)


def stdlib_random_draw() -> float:
    return random.random()
