"""Seeded R004 violations: execution layout leaking into seeds/specs."""

from repro.sim.rng import derive_seed
from repro.sweep import SweepSpec


def seed_from_worker_count(root: int, workers: int) -> int:
    return derive_seed(root, workers)


def spec_from_executor(executor) -> SweepSpec:
    return SweepSpec(
        algorithm="uniform",
        distances=(4,),
        ks=(1,),
        trials=8,
        seed=executor.workers,
    )


def seed_from_host_list(root: int, hosts) -> int:
    return derive_seed(root, len(hosts))


def spec_from_endpoint(port: int) -> SweepSpec:
    return SweepSpec(
        algorithm="uniform",
        distances=(4,),
        ks=(1,),
        trials=8,
        seed=port,
    )
