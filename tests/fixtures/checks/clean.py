"""A clean module: derived randomness only — zero findings expected."""

from repro.sim.rng import derive_rng, derive_seed, make_rng


def derived_stream(root: int, trial: int, agent: int):
    return derive_rng(root, trial, agent)


def derived_seed(root: int, index: int) -> int:
    return derive_seed(root, index)


def seeded_generator(seed: int):
    return make_rng(seed)


def suppressed_ambient() -> float:
    import numpy as np

    return float(np.random.normal())  # repro: allow(R001)
