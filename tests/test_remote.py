"""Tests for the distributed sweep backend (DESIGN.md §11).

The load-bearing guarantees:

* the wire format round-trips frames and arrays bit-for-bit;
* the handshake rejects any code-identity mismatch, both driver- and
  worker-side;
* serial == process == remote, bitwise, across fixed and adaptive
  budgets and dynamic worlds (loopback workers exercise the full
  socket path in-process);
* a worker lost mid-sweep — killed, silent, or stalling — has its
  tasks resubmitted and is bitwise-invisible in the results;
* losing *every* worker fails outstanding tasks loudly instead of
  hanging the collector.
"""

import asyncio
import json
import os
import re
import socket
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.stats import BudgetPolicy
from repro.sweep import (
    LoopbackWorker,
    RemoteExecutor,
    RemoteTaskError,
    SweepSpec,
    make_executor,
    parse_hosts,
    run_sweep,
)
from repro.sweep.executor import CRASH_ENV
from repro.sweep.remote import (
    DEFAULT_PORT,
    HOSTS_ENV,
    _PREFIX,
    _resolve_task_fn,
    _task_name,
    decode_array,
    encode_array,
    encode_frame,
    read_frame,
    version_mismatch,
    version_record,
)
from repro.sweep.runner import _execute_block

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)


def small_spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16),
        ks=(1, 4),
        trials=20,
        seed=42,
    )
    base.update(overrides)
    return SweepSpec(**base)


def adaptive(rel_ci=1e-9, min_trials=32, max_trials=128, **overrides):
    return small_spec(
        budget=BudgetPolicy.target_rel_ci(
            rel_ci, min_trials=min_trials, max_trials=max_trials
        ),
        **overrides,
    )


def assert_sweeps_equal(a, b):
    assert len(a.cells) == len(b.cells)
    for x, y in zip(a.cells, b.cells):
        assert (x.distance, x.k) == (y.distance, y.k)
        assert np.array_equal(x.times, y.times), (x.distance, x.k)


# A deterministic, repro-importable task for direct executor tests:
# the third 32-trial block of one adaptive cell.
BLOCK_PAYLOAD = (adaptive(), 8, 1, 0)


def run_block_serially():
    return _execute_block(BLOCK_PAYLOAD)


# ----------------------------------------------------------------------
# Wire format units
# ----------------------------------------------------------------------

def _read_frame_sync(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestWireFormat:
    def test_frame_roundtrip(self):
        header = {"type": "task", "id": 7, "fn": "repro.x"}
        payload = b"\x00\x01binary\xff"
        assert _read_frame_sync(encode_frame(header, payload)) == (
            header,
            payload,
        )

    def test_empty_payload_roundtrip(self):
        assert _read_frame_sync(encode_frame({"type": "ping"})) == (
            {"type": "ping"},
            b"",
        )

    def test_oversized_frame_rejected(self):
        poisoned = _PREFIX.pack(0xFFFFFFFF, 0) + b"x"
        with pytest.raises(ConnectionError, match="oversized"):
            _read_frame_sync(poisoned)

    def test_non_object_header_rejected(self):
        raw = json.dumps([1, 2]).encode()
        data = _PREFIX.pack(len(raw), 0) + raw
        with pytest.raises(ConnectionError, match="malformed"):
            _read_frame_sync(data)

    def test_array_roundtrip_preserves_bytes(self):
        array = np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0
        header, payload = encode_array(array)
        out = decode_array(header, payload)
        assert out.shape == (3, 4)
        assert np.array_equal(out, array)
        assert out.tobytes() == array.tobytes()

    def test_scalar_array_roundtrip(self):
        header, payload = encode_array(np.float64(3.5))
        assert decode_array(header, payload) == np.float64(3.5)

    def test_decode_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            decode_array({"shape": [1], "dtype": "int32"}, b"\0" * 4)

    def test_decode_rejects_size_mismatch(self):
        header, payload = encode_array(np.ones(4))
        with pytest.raises(ValueError, match="does not match"):
            decode_array({"shape": [5], "dtype": "float64"}, payload)

    def test_decoded_array_is_writable_copy(self):
        header, payload = encode_array(np.ones(3))
        out = decode_array(header, payload)
        out[0] = 9.0  # frombuffer views are read-only; we must copy


class TestVersionRecord:
    def test_matching_records_are_compatible(self):
        assert version_mismatch(version_record(), version_record()) is None

    def test_each_key_is_checked(self):
        for key in ("protocol", "spec", "block_schedule", "repro"):
            theirs = dict(version_record())
            theirs[key] = "something-else"
            message = version_mismatch(version_record(), theirs)
            assert message is not None and key in message

    def test_missing_keys_mismatch(self):
        assert version_mismatch(version_record(), {}) is not None


class TestParseHosts:
    def test_comma_string_with_default_port(self):
        assert parse_hosts("a:7000,b") == [("a", 7000), ("b", DEFAULT_PORT)]

    def test_tuple_entries(self):
        assert parse_hosts([("a", 1), ["b", "2"]]) == [("a", 1), ("b", 2)]

    def test_duplicate_endpoints_are_kept(self):
        # One endpoint listed twice = two connections (two shards).
        assert parse_hosts("a:1,a:1") == [("a", 1), ("a", 1)]

    def test_rejects_bad_entries(self):
        for bad in (":7000", "a:notaport", [("a", 1, 2)], "a:0", "a:70000"):
            with pytest.raises(ValueError):
                parse_hosts(bad)


class TestTaskFnResolution:
    def test_roundtrip_for_repro_functions(self):
        name = _task_name(_execute_block)
        assert name == "repro.sweep.runner._execute_block"
        assert _resolve_task_fn(name) is _execute_block

    def test_rejects_non_repro_modules(self):
        with pytest.raises(ValueError, match="refusing"):
            _resolve_task_fn("os.system")
        with pytest.raises(ValueError, match="refusing"):
            _resolve_task_fn("reprox.evil")  # prefix, not package path

    def test_rejects_missing_attribute(self):
        with pytest.raises(ValueError):
            _resolve_task_fn("repro.sweep.runner.no_such_function")

    def test_task_name_rejects_locals(self):
        def local_fn(payload):
            return np.zeros(1)

        with pytest.raises(ValueError, match="module-level"):
            _task_name(local_fn)
        with pytest.raises(ValueError, match="module-level"):
            _task_name(lambda p: p)


# ----------------------------------------------------------------------
# Worker-side protocol (raw socket client against a LoopbackWorker)
# ----------------------------------------------------------------------

def _recv_exactly(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed")
        buf += chunk
    return buf


def _recv_frame(sock):
    hlen, plen = _PREFIX.unpack(_recv_exactly(sock, 8))
    header = json.loads(_recv_exactly(sock, hlen).decode())
    payload = _recv_exactly(sock, plen) if plen else b""
    return header, payload


class TestWorkerProtocol:
    def test_handshake_task_ping_bye(self):
        import pickle

        with LoopbackWorker() as worker:
            with socket.create_connection(worker.address, timeout=10) as sock:
                sock.sendall(encode_frame(
                    {"type": "hello", "versions": version_record()}
                ))
                header, _ = _recv_frame(sock)
                assert header["type"] == "welcome"
                assert version_mismatch(
                    version_record(), header["versions"]
                ) is None
                assert header["slots"] == 1
                assert header["pid"] == os.getpid()  # in-process worker

                sock.sendall(encode_frame({"type": "ping"}))
                assert _recv_frame(sock)[0]["type"] == "pong"

                blob = pickle.dumps(BLOCK_PAYLOAD)
                sock.sendall(encode_frame(
                    {
                        "type": "task",
                        "id": 11,
                        "fn": _task_name(_execute_block),
                    },
                    blob,
                ))
                header, payload = _recv_frame(sock)
                assert header["type"] == "result" and header["id"] == 11
                assert np.array_equal(
                    decode_array(header, payload), run_block_serially()
                )
                sock.sendall(encode_frame({"type": "bye"}))

    def test_version_mismatch_rejected(self):
        with LoopbackWorker() as worker:
            with socket.create_connection(worker.address, timeout=10) as sock:
                versions = dict(version_record())
                versions["spec"] = -1
                sock.sendall(encode_frame(
                    {"type": "hello", "versions": versions}
                ))
                header, _ = _recv_frame(sock)
                assert header["type"] == "reject"
                assert "spec" in header["reason"]

    def test_task_exception_returns_error_frame(self):
        import pickle

        with LoopbackWorker() as worker:
            with socket.create_connection(worker.address, timeout=10) as sock:
                sock.sendall(encode_frame(
                    {"type": "hello", "versions": version_record()}
                ))
                assert _recv_frame(sock)[0]["type"] == "welcome"
                sock.sendall(encode_frame(
                    {
                        "type": "task",
                        "id": 3,
                        "fn": _task_name(_execute_block),
                    },
                    pickle.dumps(None),  # unpackable payload: fn raises
                ))
                header, _ = _recv_frame(sock)
                assert header["type"] == "error" and header["id"] == 3
                assert header["error"]

    def test_disallowed_fn_returns_error_frame(self):
        import pickle

        with LoopbackWorker() as worker:
            with socket.create_connection(worker.address, timeout=10) as sock:
                sock.sendall(encode_frame(
                    {"type": "hello", "versions": version_record()}
                ))
                assert _recv_frame(sock)[0]["type"] == "welcome"
                sock.sendall(encode_frame(
                    {"type": "task", "id": 4, "fn": "os.system"},
                    pickle.dumps("true"),
                ))
                header, _ = _recv_frame(sock)
                assert header["type"] == "error"
                assert "refusing" in header["error"]


# ----------------------------------------------------------------------
# Fake (misbehaving) workers for driver fault handling
# ----------------------------------------------------------------------

class FakeWorker:
    """A raw-socket worker that handshakes, then misbehaves.

    * ``"blackhole"`` — never answers anything after the welcome: the
      driver's heartbeat must declare it lost.
    * ``"stall"`` — answers pings but never returns task results: only
      a per-task deadline can unstick its tasks.
    * ``"reject"`` — refuses the handshake like a version-skewed peer.
    """

    def __init__(self, behavior):
        self.behavior = behavior
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(4)
        self._server.settimeout(30.0)
        self.address = self._server.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        try:
            conn, _ = self._server.accept()
        except OSError:
            return
        with conn:
            try:
                header, _ = _recv_frame(conn)
                assert header["type"] == "hello"
                if self.behavior == "reject":
                    conn.sendall(encode_frame(
                        {"type": "reject", "reason": "spec version mismatch"}
                    ))
                    return
                conn.sendall(encode_frame({
                    "type": "welcome",
                    "versions": version_record(),
                    "slots": 1,
                    "pid": 0,
                }))
                conn.settimeout(0.2)
                while not self._stop.is_set():
                    try:
                        header, _ = _recv_frame(conn)
                    except socket.timeout:
                        continue
                    if self.behavior == "stall" and header["type"] == "ping":
                        conn.sendall(encode_frame({"type": "pong"}))
                    # blackhole: read and ignore everything.
            except (ConnectionError, OSError):
                pass

    def stop(self):
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        self._thread.join(timeout=10.0)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.stop()


class TestDriverFaultHandling:
    def test_handshake_reject_fails_fast(self):
        with FakeWorker("reject") as fake:
            ex = RemoteExecutor([fake.address], connect_timeout=5.0)
            with pytest.raises(RuntimeError, match="no remote workers"):
                ex.submit(_execute_block, BLOCK_PAYLOAD)
            ex.close()

    def test_unreachable_host_fails_fast(self):
        # A bound-then-closed socket: connection refused immediately.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        ex = RemoteExecutor(
            [("127.0.0.1", free_port)], connect_timeout=2.0
        )
        with pytest.raises(RuntimeError, match="no remote workers"):
            ex.submit(_execute_block, BLOCK_PAYLOAD)
        ex.close()

    def test_silent_worker_times_out_and_resubmits(self):
        expected = run_block_serially()
        with FakeWorker("blackhole") as fake, LoopbackWorker() as good:
            ex = RemoteExecutor(
                [fake.address, good.address],
                heartbeat_interval=0.1,
                heartbeat_misses=2,
            )
            try:
                # Two tasks across two single-slot workers: one lands on
                # the black hole and must be rescued by the heartbeat.
                t0 = ex.submit(_execute_block, BLOCK_PAYLOAD)
                t1 = ex.submit(_execute_block, BLOCK_PAYLOAD)
                results = dict(
                    ex.next_completed() for _ in range(2)
                )
                assert set(results) == {t0, t1}
                for value in results.values():
                    assert np.array_equal(value, expected)
            finally:
                ex.close()

    def test_stalling_worker_hits_task_timeout(self):
        expected = run_block_serially()
        with FakeWorker("stall") as fake, LoopbackWorker() as good:
            ex = RemoteExecutor(
                [fake.address, good.address],
                heartbeat_interval=0.1,
                heartbeat_misses=50,  # pings succeed; only the deadline fires
                task_timeout=0.4,
            )
            try:
                t0 = ex.submit(_execute_block, BLOCK_PAYLOAD)
                t1 = ex.submit(_execute_block, BLOCK_PAYLOAD)
                results = dict(ex.next_completed() for _ in range(2))
                assert set(results) == {t0, t1}
                for value in results.values():
                    assert np.array_equal(value, expected)
            finally:
                ex.close()

    def test_all_workers_lost_fails_outstanding(self):
        with FakeWorker("blackhole") as fake:
            ex = RemoteExecutor(
                [fake.address],
                heartbeat_interval=0.1,
                heartbeat_misses=2,
                max_attempts=1,
            )
            try:
                ex.submit(_execute_block, BLOCK_PAYLOAD)
                with pytest.raises(RuntimeError, match="remote"):
                    ex.next_completed()
                # The executor is poisoned: later submits fail loudly
                # instead of queueing work nothing will run.
                with pytest.raises(RuntimeError):
                    ex.submit(_execute_block, BLOCK_PAYLOAD)
            finally:
                ex.close()

    def test_task_exception_raises_not_resubmits(self):
        with LoopbackWorker() as worker:
            ex = RemoteExecutor([worker.address])
            try:
                ex.submit(_execute_block, None)  # fn raises on the worker
                with pytest.raises(RemoteTaskError):
                    ex.next_completed()
                # A deterministic task failure must not kill the backend.
                ex.submit(_execute_block, BLOCK_PAYLOAD)
                _, value = ex.next_completed()
                assert np.array_equal(value, run_block_serially())
            finally:
                ex.close()

    def test_discard_drops_results(self):
        with LoopbackWorker(slots=2) as worker:
            ex = RemoteExecutor([worker.address], slots=2)
            try:
                t0 = ex.submit(_execute_block, BLOCK_PAYLOAD)
                t1 = ex.submit(_execute_block, BLOCK_PAYLOAD)
                ex.discard([t0])
                ticket, _ = ex.next_completed()
                assert ticket == t1
                assert ex.pending == 0
            finally:
                ex.close()


# ----------------------------------------------------------------------
# Executor surface via make_executor
# ----------------------------------------------------------------------

class TestMakeExecutorRemote:
    def test_hosts_option_builds_remote(self):
        ex = make_executor(backend="remote", hosts="a:7001,b")
        assert isinstance(ex, RemoteExecutor)
        assert ex.workers == 2  # known before any connection opens
        ex.close()

    def test_slots_scale_scheduling_width(self):
        ex = make_executor(backend="remote", hosts="a:7001,b", slots=3)
        assert ex.workers == 6
        ex.close()

    def test_env_hosts_fallback(self, monkeypatch):
        monkeypatch.setenv(HOSTS_ENV, "envhost:7010")
        ex = make_executor(backend="remote")
        assert isinstance(ex, RemoteExecutor)
        assert ex.workers == 1
        ex.close()

    def test_remote_without_hosts_rejected(self, monkeypatch):
        monkeypatch.delenv(HOSTS_ENV, raising=False)
        with pytest.raises(ValueError, match="hosts"):
            make_executor(backend="remote")

    def test_hosts_with_local_backend_rejected(self):
        with pytest.raises(ValueError, match="remote"):
            make_executor(workers=2, backend="process", hosts="a:1")

    def test_auto_degrades_from_unreachable_remote(self, monkeypatch):
        # auto + hosts probes the remote tier first; an unreachable
        # host degrades to the process pool with a single warning
        # (DESIGN.md §13) instead of failing the sweep.
        from repro.sweep.executor import ProcessExecutor

        monkeypatch.setenv(HOSTS_ENV, "a:7001")
        with pytest.warns(RuntimeWarning, match="degrading to 'process'"):
            with make_executor(workers=2, backend="auto") as ex:
                assert isinstance(ex, ProcessExecutor)


# ----------------------------------------------------------------------
# Parity: serial == process == remote, bitwise
# ----------------------------------------------------------------------

@pytest.fixture()
def loopback_pair():
    with LoopbackWorker(slots=2) as w1, LoopbackWorker(slots=2) as w2:
        yield [w1.address, w2.address]


def run_remote(spec, hosts, **executor_options):
    ex = RemoteExecutor(hosts, **executor_options)
    try:
        return run_sweep(spec, executor=ex, cache=False)
    finally:
        ex.close()


class TestRemoteParity:
    def test_fixed_excursion(self, loopback_pair):
        spec = small_spec()
        serial = run_sweep(spec, cache=False)
        process = run_sweep(spec, cache=False, workers=2)
        remote = run_remote(spec, loopback_pair, slots=2)
        assert_sweeps_equal(serial, process)
        assert_sweeps_equal(serial, remote)

    def test_fixed_walker(self, loopback_pair):
        spec = small_spec(algorithm="random_walk", horizon=500.0, ks=(2, 4))
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_remote(spec, loopback_pair),
        )

    def test_adaptive_excursion(self, loopback_pair):
        spec = adaptive()
        serial = run_sweep(spec, cache=False)
        process = run_sweep(spec, cache=False, workers=2)
        remote = run_remote(spec, loopback_pair, slots=2)
        assert_sweeps_equal(serial, process)
        assert_sweeps_equal(serial, remote)

    def test_dynamic_world(self, loopback_pair):
        spec = small_spec(
            trials=10,
            horizon=1500.0,
            distances=tuple(range(4, 15)),
            ks=(2,),
            world={
                "n_targets": 2, "motion": "drift", "motion_rate": 0.1,
                "arrival": "geometric", "arrival_hazard": 0.005,
            },
        )
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_remote(spec, loopback_pair, slots=2),
        )

    def test_dynamic_world_adaptive(self, loopback_pair):
        spec = adaptive(
            max_trials=64,
            trials=10,
            horizon=1500.0,
            distances=(6, 10),
            ks=(2,),
            world={"n_targets": 2, "motion": "walk", "motion_rate": 0.1},
        )
        assert_sweeps_equal(
            run_sweep(spec, cache=False),
            run_remote(spec, loopback_pair),
        )

    def test_persistent_remote_executor_across_sweeps(self, loopback_pair):
        fixed, adapt = small_spec(), adaptive(max_trials=64)
        ex = RemoteExecutor(loopback_pair, slots=2)
        try:
            first = run_sweep(fixed, cache=False, executor=ex)
            second = run_sweep(adapt, cache=False, executor=ex)
        finally:
            ex.close()
        assert_sweeps_equal(first, run_sweep(fixed, cache=False))
        assert_sweeps_equal(second, run_sweep(adapt, cache=False))


# ----------------------------------------------------------------------
# Subprocess workers: the real `repro-ants worker` + kill mid-sweep
# ----------------------------------------------------------------------

def _spawn_worker(tmp_path, tag, crash_after=None):
    """Start `python -m repro worker --port 0`; return (proc, address)."""
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env.pop(CRASH_ENV, None)
    if crash_after is not None:
        crash_file = tmp_path / f"crash_{tag}"
        crash_file.write_text(str(crash_after))
        env[CRASH_ENV] = str(crash_file)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([0-9.]+):(\d+)", line)
    assert match, f"unexpected worker banner: {line!r}"
    return proc, (match.group(1), int(match.group(2)))


class TestSubprocessWorkers:
    def test_worker_kill_mid_sweep_is_bitwise_invisible(self, tmp_path):
        spec = adaptive()
        serial = run_sweep(spec, cache=False)
        doomed, addr_doomed = _spawn_worker(tmp_path, "doomed", crash_after=1)
        healthy, addr_healthy = _spawn_worker(tmp_path, "healthy")
        try:
            remote = run_remote(
                spec,
                [addr_doomed, addr_healthy],
                heartbeat_interval=0.5,
            )
            assert_sweeps_equal(serial, remote)
            # The kill really happened: the doomed worker exited.
            assert doomed.wait(timeout=10) is not None
        finally:
            for proc in (doomed, healthy):
                proc.terminate()
                proc.wait(timeout=10)

    def test_worker_survives_driver_departure(self, tmp_path):
        proc, address = _spawn_worker(tmp_path, "longlived")
        try:
            first = run_remote(small_spec(), [address])
            second = run_remote(small_spec(), [address])
            assert_sweeps_equal(first, second)
            assert proc.poll() is None  # still serving after two drivers
        finally:
            proc.terminate()
            proc.wait(timeout=10)
