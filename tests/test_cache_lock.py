"""Regression tests for block-store writer serialisation (DESIGN.md §7).

``append_blocks`` is a read-merge-write cycle; before the store lockfile
two concurrent writers could interleave those cycles and the later
``os.replace`` would silently drop every cell the earlier writer had
just added.  With remote shards syncing one store this is no longer a
rare developer-laptop race — it is the steady state.  These tests pin:

* the lost-update scenario itself (deterministically interleaved via a
  held lock, plus a multiprocess stress test);
* stale-lock takeover (a crashed writer must not wedge the store);
* the bounded-wait fallback (the cache must never block a sweep
  indefinitely — it degrades to the historical unserialised merge).
"""

import multiprocessing
import os
import threading

import numpy as np

import repro.sweep.cache as cache_mod
from repro.sweep import SweepSpec, append_blocks, load_blocks
from repro.sweep.cache import LOCK_SUFFIX, block_store_path


def make_spec():
    return SweepSpec(
        algorithm="nonuniform",
        distances=(8,),
        ks=(1,),
        trials=8,
        seed=7,
    )


def store_for(tmp_path):
    spec = make_spec()
    return spec, block_store_path(spec, str(tmp_path))


def _stress_writer(spec, path, index, rounds, barrier):
    barrier.wait()
    for round_no in range(rounds):
        blocks = {
            (100 * index + round_no, 1): np.full(32, float(index)),
        }
        assert append_blocks(spec, path, blocks)


class TestConcurrentWriters:
    def test_interleaved_writers_keep_both_cells(self, tmp_path):
        """The exact pre-lock lost-update interleaving, deterministically.

        Writer B starts its merge while writer A is mid-cycle (simulated
        by holding A's lock).  Before the lockfile, B would read the
        pre-A store, merge only its own cell, and A's subsequent replace
        — or B's, whichever landed second — would drop the other's cell.
        With the lock, B waits for A and merges on top of A's write.
        """
        spec, path = store_for(tmp_path)
        lock_path = path + LOCK_SUFFIX
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)

        b_done = threading.Event()

        def writer_b():
            append_blocks(spec, path, {(2, 1): np.full(32, 2.0)})
            b_done.set()

        thread = threading.Thread(target=writer_b)
        thread.start()
        try:
            # B must be parked on the lock, not merging: give it ample
            # time to (wrongly) finish if the lock is not honoured.
            assert not b_done.wait(timeout=0.5)
            # "A" completes its cycle and releases.
            assert cache_mod.save_blocks(
                spec, path, {(1, 1): np.full(32, 1.0)}
            )
        finally:
            os.unlink(lock_path)
            thread.join(timeout=30.0)
        assert b_done.is_set()
        merged = load_blocks(spec, path)
        assert set(merged) == {(1, 1), (2, 1)}

    def test_multiprocess_stress_no_cell_lost(self, tmp_path):
        """Hammer one store from several processes; every cell survives."""
        spec, path = store_for(tmp_path)
        writers, rounds = 4, 5
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(writers)
        procs = [
            ctx.Process(
                target=_stress_writer,
                args=(spec, path, index, rounds, barrier),
            )
            for index in range(writers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        merged = load_blocks(spec, path)
        expected = {
            (100 * index + round_no, 1)
            for index in range(writers)
            for round_no in range(rounds)
        }
        assert set(merged) == expected
        for (key, _), times in merged.items():
            assert np.all(times == float(key // 100))

    def test_lock_released_after_append(self, tmp_path):
        spec, path = store_for(tmp_path)
        assert append_blocks(spec, path, {(3, 1): np.full(32, 3.0)})
        assert not os.path.exists(path + LOCK_SUFFIX)
        assert set(load_blocks(spec, path)) == {(3, 1)}


class TestLockRecovery:
    def test_stale_lock_is_taken_over(self, tmp_path, monkeypatch):
        """A crashed writer's lockfile must not wedge the store."""
        monkeypatch.setattr(cache_mod, "LOCK_STALE_SECONDS", 0.05)
        spec, path = store_for(tmp_path)
        lock_path = path + LOCK_SUFFIX
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        ancient = os.stat(lock_path).st_mtime - 3600.0
        os.utime(lock_path, (ancient, ancient))

        assert append_blocks(spec, path, {(4, 1): np.full(32, 4.0)})
        assert set(load_blocks(spec, path)) == {(4, 1)}
        # The takeover's own lock was released too.
        assert not os.path.exists(lock_path)

    def test_timeout_degrades_to_unlocked_merge(self, tmp_path, monkeypatch):
        """A held (fresh) lock delays but never blocks a writer forever."""
        monkeypatch.setattr(cache_mod, "LOCK_TIMEOUT_SECONDS", 0.1)
        monkeypatch.setattr(cache_mod, "LOCK_STALE_SECONDS", 3600.0)
        spec, path = store_for(tmp_path)
        lock_path = path + LOCK_SUFFIX
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        try:
            assert append_blocks(spec, path, {(5, 1): np.full(32, 5.0)})
            assert set(load_blocks(spec, path)) == {(5, 1)}
            # Not ours: the timed-out writer must not delete the
            # holder's lockfile.
            assert os.path.exists(lock_path)
        finally:
            os.unlink(lock_path)

    def test_unwritable_directory_still_best_effort(self, tmp_path):
        spec = make_spec()
        path = os.path.join(
            str(tmp_path), "missing", "blocks_nonuniform_x.npz"
        )
        # No store directory and nothing creatable below a file: the
        # append must fail soft (False), never raise.
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        bad_path = os.path.join(str(blocker), "sub", "store.npz")
        assert append_blocks(spec, bad_path, {(6, 1): np.ones(32)}) is False
        # A merely *missing* directory is created on demand.
        assert append_blocks(spec, path, {(6, 1): np.ones(32)})
        assert set(load_blocks(spec, path)) == {(6, 1)}
