"""Golden statistical-regression suite for the quick-config experiments.

The PR-2 identical-replica bug shifted every E7 walker row without any
test noticing: the engines were self-consistent, just quietly wrong.
This suite pins the *values*.  Small JSON fixtures under ``tests/golden/``
record every cell of the quick-config E1/E3/E7 tables at the default seed
together with a per-value tolerance, and the tests assert that a fresh
``run_experiment`` reproduces them.

Today the reproduction is bitwise (seeded engines are deterministic), so
any mismatch at all means execution semantics changed.  The stored
tolerances — ``6 x stderr`` where a row carries its standard error, loose
relative bands otherwise — exist so that a *distribution-preserving*
refactor (one that legitimately resamples, e.g. reordering vectorised
draws) can regenerate the fixtures knowingly instead of silently: run

    PYTHONPATH=src python tests/test_golden_regression.py --regen

and review the diff.  A change larger than the tolerance is flagged as a
statistical regression even if every internal consistency test passes.
"""

import json
import math
import os
import sys

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
GOLDEN_SEED = 20120716  # the experiments' default root seed
EXPERIMENT_IDS = ("E1", "E3", "E7", "E11", "E12")

#: Columns that must reproduce exactly (grid coordinates and closed
#: forms).  E11's knob columns qualify; "spread" does NOT belong here —
#: E11's speed table uses it for the exact spread knob, but E1's summary
#: table uses the same name for a statistical ratio spread, which must
#: keep its tolerance.
EXACT_COLUMNS = {
    "D", "k", "trials", "eps", "optimal", "cells",
    "lifetime_x_opt", "speed_ratio", "hazard",
    "n_targets", "arrival_x_opt",
}

#: (relative, absolute) tolerance floors per statistical column, used when
#: no stderr-based tolerance applies.
FALLBACK_TOLS = {
    "mean_time": (0.30, 1e-9),
    "ratio": (0.30, 1e-9),
    "phi": (0.30, 1e-9),
    "vs_optimal": (0.35, 1e-9),
    "success": (0.0, 0.18),
    "censored": (0.0, 0.18),
    "stderr": (0.60, 1e-9),
    "ci95": (0.60, 1e-9),
    "degradation": (0.45, 1e-9),
    "min_ratio": (0.30, 1e-9),
    "max_ratio": (0.30, 1e-9),
    "spread": (0.30, 1e-9),
    "a": (0.45, 0.1),
    "b": (0.45, 0.1),
    "r2": (0.45, 0.1),
    "phi_at_kmax": (0.30, 1e-9),
    "vs_static": (0.45, 1e-9),
}


def _tolerance(column, value, row):
    """Tolerance for one numeric table value.

    Rows that carry their own standard error get a ``6 x stderr`` band on
    mean-like columns — the issue-grade statistical tolerance — scaled to
    the benchmark for ratio columns; everything else falls back to the
    per-column bands above.
    """
    if column in EXACT_COLUMNS:
        return 0.0
    stderr = row.get("stderr")
    stderr_ok = (
        isinstance(stderr, (int, float))
        and math.isfinite(stderr)
        and stderr > 0
    )
    if column == "mean_time" and stderr_ok:
        return 6.0 * stderr
    if column == "ratio" and stderr_ok and row.get("optimal"):
        return 6.0 * stderr / row["optimal"]
    rel, floor = FALLBACK_TOLS.get(column, (0.30, 1e-9))
    return rel * abs(value) + floor


def _encode(value):
    """JSON-safe encoding: non-finite floats become marker strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return {"nonfinite": repr(value)}
    return value


def _table_record(table):
    checks = []
    for row_index, row in enumerate(table.rows):
        for column, value in row.items():
            if isinstance(value, str):
                checks.append(
                    {"row": row_index, "column": column, "value": value}
                )
                continue
            value = float(value)
            if not math.isfinite(value):
                checks.append(
                    {
                        "row": row_index,
                        "column": column,
                        "value": _encode(value),
                    }
                )
                continue
            checks.append(
                {
                    "row": row_index,
                    "column": column,
                    "value": value,
                    "tol": _tolerance(column, value, row),
                }
            )
    return {"title": table.title, "rows": len(table.rows), "checks": checks}


def _run(experiment_id):
    from repro.experiments.registry import run_experiment

    return run_experiment(experiment_id, quick=True, seed=GOLDEN_SEED)


def _fixture_path(experiment_id):
    return os.path.join(GOLDEN_DIR, f"{experiment_id.lower()}_quick.json")


def regenerate():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for experiment_id in EXPERIMENT_IDS:
        record = {
            "experiment": experiment_id,
            "seed": GOLDEN_SEED,
            "quick": True,
            "tables": [_table_record(t) for t in _run(experiment_id)],
        }
        path = _fixture_path(experiment_id)
        with open(path, "w") as handle:
            json.dump(record, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_quick_run_matches_golden(experiment_id):
    path = _fixture_path(experiment_id)
    assert os.path.exists(path), (
        f"missing golden fixture {path}; regenerate with "
        f"PYTHONPATH=src python tests/test_golden_regression.py --regen"
    )
    with open(path) as handle:
        golden = json.load(handle)
    assert golden["seed"] == GOLDEN_SEED

    tables = _run(experiment_id)
    assert len(tables) == len(golden["tables"]), (
        f"{experiment_id} now returns {len(tables)} tables, golden has "
        f"{len(golden['tables'])}"
    )
    failures = []
    for table, expected in zip(tables, golden["tables"]):
        if len(table.rows) != expected["rows"]:
            failures.append(
                f"{expected['title']!r}: {len(table.rows)} rows, "
                f"golden has {expected['rows']}"
            )
            continue
        for check in expected["checks"]:
            row = table.rows[check["row"]]
            column = check["column"]
            where = f"{expected['title']!r} row {check['row']} col {column}"
            if column not in row:
                failures.append(f"{where}: column vanished")
                continue
            actual = row[column]
            stored = check["value"]
            if isinstance(stored, str):
                if actual != stored:
                    failures.append(f"{where}: {actual!r} != {stored!r}")
                continue
            if isinstance(stored, dict):  # non-finite marker
                want = float(stored["nonfinite"])
                actual = float(actual)
                same = (
                    math.isnan(want) and math.isnan(actual)
                ) or actual == want
                if not same:
                    failures.append(f"{where}: {actual!r} != {want!r}")
                continue
            actual = float(actual)
            tol = check["tol"]
            if not math.isfinite(actual) or abs(actual - stored) > tol + 1e-12:
                failures.append(
                    f"{where}: {actual:.6g} deviates from golden "
                    f"{stored:.6g} by more than tol {tol:.3g}"
                )
    assert not failures, (
        "statistical regression against golden fixtures:\n  "
        + "\n  ".join(failures)
        + "\n(if the change is an intended, distribution-preserving "
        "refactor, regenerate via --regen and review the diff)"
    )


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
        print("usage: PYTHONPATH=src python tests/test_golden_regression.py --regen")
