"""Tests for the exact square spiral (repro.core.spiral).

The closed-form hit time and its inverse are the foundation of the fast
engine, so they are verified exhaustively against the step generator.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spiral import (
    best_hit_time_at_distance,
    coverage_radius,
    spiral_cells,
    spiral_hit_time,
    spiral_hit_time_array,
    spiral_position,
    spiral_position_array,
    spiral_steps,
    time_to_cover_radius,
    worst_hit_time_at_distance,
)

N_EXHAUSTIVE = 15000  # covers every cell within L1 radius ~60


@pytest.fixture(scope="module")
def generated_cells():
    return list(itertools.islice(spiral_cells(), N_EXHAUSTIVE))


class TestGenerator:
    def test_starts_at_origin(self, generated_cells):
        assert generated_cells[0] == (0, 0)

    def test_first_ten_cells(self, generated_cells):
        assert generated_cells[:10] == [
            (0, 0),
            (1, 0),
            (1, 1),
            (0, 1),
            (-1, 1),
            (-1, 0),
            (-1, -1),
            (0, -1),
            (1, -1),
            (2, -1),
        ]

    def test_unit_steps(self, generated_cells):
        for (x0, y0), (x1, y1) in zip(generated_cells, generated_cells[1:]):
            assert abs(x1 - x0) + abs(y1 - y0) == 1

    def test_no_cell_revisited(self, generated_cells):
        assert len(set(generated_cells)) == len(generated_cells)

    def test_run_lengths_pattern(self):
        steps = list(itertools.islice(spiral_steps(), 12))
        assert steps == [
            (1, 0),
            (0, 1),
            (-1, 0),
            (-1, 0),
            (0, -1),
            (0, -1),
            (1, 0),
            (1, 0),
            (1, 0),
            (0, 1),
            (0, 1),
            (0, 1),
        ]


class TestHitTimeClosedForm:
    def test_matches_generator_exhaustively(self, generated_cells):
        for t, (x, y) in enumerate(generated_cells):
            assert spiral_hit_time(x, y) == t

    def test_origin(self):
        assert spiral_hit_time(0, 0) == 0

    def test_vectorised_matches_scalar(self, generated_cells):
        xs = np.array([c[0] for c in generated_cells])
        ys = np.array([c[1] for c in generated_cells])
        times = spiral_hit_time_array(xs, ys)
        assert np.array_equal(times, np.arange(len(generated_cells)))

    def test_vectorised_broadcasting(self):
        xs = np.array([[1, 0], [-1, 0]])
        ys = np.array([[0, 1], [0, -1]])
        times = spiral_hit_time_array(xs, ys)
        assert times.shape == (2, 2)
        assert times[0, 0] == 1 and times[1, 1] == 7

    def test_bijection_on_large_offsets(self):
        for x, y in [(1000, -999), (-512, 512), (123456, 7), (0, -10**6)]:
            t = spiral_hit_time(x, y)
            assert spiral_position(t) == (x, y)


class TestPositionInverse:
    def test_matches_generator_exhaustively(self, generated_cells):
        for t, cell in enumerate(generated_cells):
            assert spiral_position(t) == cell

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            spiral_position(-1)

    def test_vectorised_matches_scalar(self):
        ts = np.arange(0, 5000)
        xs, ys = spiral_position_array(ts)
        for t in (0, 1, 7, 100, 1234, 4999):
            assert (xs[t], ys[t]) == spiral_position(t)

    def test_vectorised_large_times(self):
        ts = np.array([10**12, 10**15, 4 * 10**17])
        xs, ys = spiral_position_array(ts)
        for t, x, y in zip(ts, xs, ys):
            assert spiral_position(int(t)) == (int(x), int(y))
            assert spiral_hit_time(int(x), int(y)) == int(t)


class TestCoverage:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 5, 10, 25])
    def test_time_to_cover_radius_is_exact(self, d, generated_cells):
        t = time_to_cover_radius(d)
        covered = set(generated_cells[: t + 1])
        ball = {
            (x, y)
            for x in range(-d, d + 1)
            for y in range(-d, d + 1)
            if abs(x) + abs(y) <= d
        }
        assert ball <= covered
        if t > 0:
            # One step earlier the ball is NOT fully covered (tightness).
            assert not ball <= set(generated_cells[:t])

    @pytest.mark.parametrize("t", [0, 1, 7, 8, 27, 28, 100, 999, 10**6])
    def test_coverage_radius_inverts_cover_time(self, t):
        d = coverage_radius(t)
        assert time_to_cover_radius(d) <= t
        assert time_to_cover_radius(d + 1) > t

    def test_coverage_radius_asymptotics(self):
        # The paper's sqrt(t)/2 convention holds up to an additive constant.
        for t in [10**2, 10**4, 10**6, 10**8]:
            d = coverage_radius(t)
            assert abs(d - (t**0.5) / 2) <= 2 + t**0.5 / 50

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 6, 10, 11])
    def test_worst_and_best_hit_times(self, d):
        ring = [(x, y) for x in range(-d, d + 1) for y in (d - abs(x), abs(x) - d)]
        ring = list({c for c in ring if abs(c[0]) + abs(c[1]) == d})
        times = [spiral_hit_time(x, y) for x, y in ring]
        assert max(times) == worst_hit_time_at_distance(d)
        assert min(times) == best_hit_time_at_distance(d)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            time_to_cover_radius(-1)
        with pytest.raises(ValueError):
            coverage_radius(-3)
        with pytest.raises(ValueError):
            best_hit_time_at_distance(-2)


class TestHitTimeProperties:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=300)
    def test_round_trip(self, x, y):
        t = spiral_hit_time(x, y)
        assert t >= 0
        assert spiral_position(t) == (x, y)

    @given(st.integers(0, 10**12))
    @settings(max_examples=300)
    def test_inverse_round_trip(self, t):
        x, y = spiral_position(t)
        assert spiral_hit_time(x, y) == t

    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=200)
    def test_hit_time_within_ring_bounds(self, x, y):
        d = abs(x) + abs(y)
        t = spiral_hit_time(x, y)
        assert best_hit_time_at_distance(d) <= t <= worst_hit_time_at_distance(d)
