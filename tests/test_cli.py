"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults_to_quick(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.command == "run" and not args.full

    def test_run_full_flag(self):
        args = build_parser().parse_args(["run", "E1", "--full"])
        assert args.full

    def test_quick_and_full_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--quick", "--full"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out and "Theorem 3.1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E8", "--quick", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "completed" in out

    def test_run_with_csv_export(self, tmp_path, capsys):
        csv_dir = tmp_path / "tables"
        assert main(["run", "E8", "--seed", "7", "--csv", str(csv_dir)]) == 0
        files = list(csv_dir.glob("e8_*.csv"))
        assert files

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Treasure" in out and "mean" in out
