"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults_to_quick(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.command == "run" and not args.full

    def test_run_full_flag(self):
        args = build_parser().parse_args(["run", "E1", "--full"])
        assert args.full

    def test_quick_and_full_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--quick", "--full"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out and "Theorem 3.1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E8", "--quick", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "completed" in out

    def test_run_with_csv_export(self, tmp_path, capsys):
        csv_dir = tmp_path / "tables"
        assert main(["run", "E8", "--seed", "7", "--csv", str(csv_dir)]) == 0
        files = list(csv_dir.glob("e8_*.csv"))
        assert files

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Treasure" in out and "mean" in out


class TestSweepCommand:
    def test_parse_sweep_arguments(self):
        args = build_parser().parse_args(
            [
                "sweep", "uniform",
                "--distances", "16,32",
                "--ks", "1,4",
                "--param", "eps=0.5",
                "--workers", "2",
                "--no-cache",
            ]
        )
        assert args.command == "sweep"
        assert args.algorithm == "uniform"
        assert args.param == ["eps=0.5"]
        assert args.workers == 2 and args.no_cache

    def test_sweep_prints_cell_table(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8,16",
                    "--ks", "1,4",
                    "--trials", "10",
                    "--seed", "3",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep nonuniform" in out and "ratio" in out
        assert "computed" in out
        # A second identical invocation is served from the cache.
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8,16",
                    "--ks", "1,4",
                    "--trials", "10",
                    "--seed", "3",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "(cache)" in capsys.readouterr().out

    def test_sweep_csv_export(self, tmp_path, capsys):
        csv_file = tmp_path / "cells.csv"
        assert (
            main(
                [
                    "sweep", "harmonic",
                    "--param", "delta=0.5",
                    "--distances", "8",
                    "--ks", "4",
                    "--trials", "10",
                    "--no-cache",
                    "--csv", str(csv_file),
                ]
            )
            == 0
        )
        assert csv_file.exists()

    def test_sweep_rejects_bad_param(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "uniform",
                    "--distances", "8",
                    "--ks", "1",
                    "--param", "eps",
                ]
            )

    def test_sweep_rejects_bad_distances(self):
        with pytest.raises(SystemExit):
            main(["sweep", "uniform", "--distances", "8,x", "--ks", "1"])

    def test_sweep_rejects_bad_trials_cleanly(self):
        with pytest.raises(SystemExit):
            main(["sweep", "uniform", "--distances", "8", "--ks", "1", "--trials", "0"])


class TestWorldFlags:
    def test_parse_world_arguments(self):
        args = build_parser().parse_args(
            [
                "sweep", "grid_belief",
                "--distances", "16",
                "--ks", "4",
                "--horizon", "6144",
                "--n-targets", "2",
                "--target-motion", "walk",
                "--motion-rate", "0.1",
                "--arrival-hazard", "0.01",
            ]
        )
        assert args.n_targets == 2
        assert args.target_motion == "walk"
        assert args.motion_rate == 0.1
        assert args.arrival_hazard == 0.01
        assert args.target_detection_prob == 1.0

    def test_dynamic_sweep_prints_world_note(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8",
                    "--ks", "2",
                    "--trials", "8",
                    "--seed", "3",
                    "--horizon", "1536",
                    "--n-targets", "2",
                    "--target-motion", "drift",
                    "--motion-rate", "0.05",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "world: n_targets=2, motion=drift(0.05)" in out

    def test_default_world_flags_leave_spec_static(self, tmp_path, capsys):
        # All-default world flags canonicalise to no world at all: the
        # printed table must not claim a world and the spec (hence the
        # cache key) is the historical static one.
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8",
                    "--ks", "2",
                    "--trials", "8",
                    "--seed", "3",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "world:" not in capsys.readouterr().out

    def test_inconsistent_world_flags_exit_cleanly(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8",
                    "--ks", "2",
                    "--horizon", "512",
                    "--target-motion", "walk",  # needs --motion-rate
                ]
            )

    def test_dynamic_world_without_horizon_exits_cleanly(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8",
                    "--ks", "2",
                    "--n-targets", "2",
                ]
            )


class TestAdaptiveFlags:
    def test_parse_budget_arguments(self):
        args = build_parser().parse_args(
            [
                "sweep", "uniform",
                "--distances", "8",
                "--ks", "1",
                "--target-rel-ci", "0.05",
                "--max-trials", "512",
                "--min-trials", "16",
                "--progress",
            ]
        )
        assert args.target_rel_ci == 0.05
        assert args.max_trials == 512 and args.min_trials == 16
        assert args.progress

    def test_run_accepts_budget_arguments(self):
        args = build_parser().parse_args(
            ["run", "E1", "--target-rel-ci", "0.1", "--progress"]
        )
        assert args.target_rel_ci == 0.1 and args.progress

    def test_max_trials_without_target_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8", "--ks", "1",
                    "--max-trials", "100", "--no-cache",
                ]
            )

    def test_negative_target_rejected(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8", "--ks", "1",
                    "--target-rel-ci", "-0.5", "--no-cache",
                ]
            )

    def test_adaptive_sweep_reports_allocation(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8", "--ks", "4",
                    "--seed", "3",
                    "--target-rel-ci", "0.5",
                    "--min-trials", "32",
                    "--max-trials", "64",
                    "--cache-dir", str(tmp_path),
                    "--progress",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive allocation" in out
        assert "target_rel_ci" in out
        assert "cell D=8 k=4" in out  # --progress line
        assert "ci95" in out  # achieved precision column

    def test_run_warns_when_experiment_ignores_budget(self, tmp_path, capsys):
        import os

        os.environ["REPRO_SWEEP_CACHE"] = str(tmp_path)
        try:
            # E8 has no D x k sweep, hence no adaptive allocation: the
            # precision target must be loudly ignored, not silently.
            assert (
                main(
                    [
                        "run", "E8", "--seed", "7",
                        "--target-rel-ci", "0.5", "--progress",
                    ]
                )
                == 0
            )
        finally:
            del os.environ["REPRO_SWEEP_CACHE"]
        out = capsys.readouterr().out
        assert "no adaptive allocation" in out
        assert "--target-rel-ci/--progress ignored" in out

    def test_sweep_censored_rows_are_flagged(self, tmp_path, capsys):
        # A horizon-capped walker sweep censors some trials: the table
        # must show the censored fraction and explain what ci95 brackets.
        assert (
            main(
                [
                    "sweep", "random_walk",
                    "--distances", "8", "--ks", "2",
                    "--trials", "40", "--seed", "3",
                    "--horizon", "200",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "censored" in out
        assert "ci95 brackets the censoring-aware mean" in out

    def test_run_with_adaptive_budget(self, tmp_path, capsys):
        import os

        os.environ["REPRO_SWEEP_CACHE"] = str(tmp_path)
        try:
            assert (
                main(
                    [
                        "run", "E1", "--seed", "9",
                        "--target-rel-ci", "0.9",
                        "--min-trials", "32", "--max-trials", "64",
                        "--progress",
                    ]
                )
                == 0
            )
        finally:
            del os.environ["REPRO_SWEEP_CACHE"]
        out = capsys.readouterr().out
        assert "adaptive allocation" in out
        assert "cell D=" in out


class TestCacheCommand:
    def _populate(self, tmp_path):
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8", "--ks", "1",
                    "--trials", "10", "--seed", "3",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )

    def test_cache_path(self, tmp_path, capsys):
        assert main(["cache", "path", "--cache-dir", str(tmp_path)]) == 0
        assert str(tmp_path) in capsys.readouterr().out

    def test_cache_list_shows_entries(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert main(["cache", "list", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep_nonuniform_" in out
        assert "nonuniform" in out and "size_kb" in out

    def test_cache_list_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "list", "--cache-dir", str(tmp_path)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_cache_prune_dry_run_keeps_files(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert (
            main(
                [
                    "cache", "prune", "--older-than", "0",
                    "--cache-dir", str(tmp_path), "--dry-run",
                ]
            )
            == 0
        )
        assert "would prune 1 entries" in capsys.readouterr().out
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_cache_prune_removes_old_entries(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert (
            main(
                [
                    "cache", "prune", "--older-than", "0",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "pruned 1 entries" in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []

    def test_cache_prune_respects_age_cutoff(self, tmp_path, capsys):
        self._populate(tmp_path)
        capsys.readouterr()
        assert (
            main(
                [
                    "cache", "prune", "--older-than", "30",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "pruned 0 entries" in capsys.readouterr().out
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_cache_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])


class TestExecutorFlags:
    def test_workers_accepts_auto(self):
        args = build_parser().parse_args(["run", "E1", "--workers", "auto"])
        assert args.workers == "auto"
        args = build_parser().parse_args(["run", "E1", "--workers", "3"])
        assert args.workers == 3

    def test_workers_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--workers", "many"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--workers", "-2"])

    def test_backend_choices(self):
        args = build_parser().parse_args(
            ["sweep", "nonuniform", "--distances", "8", "--ks", "1",
             "--backend", "process"]
        )
        assert args.backend == "process"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "E1", "--backend", "quantum"]
            )

    def test_sweep_with_explicit_backend_runs(self, capsys):
        assert (
            main(
                ["sweep", "nonuniform", "--distances", "8", "--ks", "1",
                 "--trials", "5", "--workers", "1", "--backend", "process",
                 "--no-cache"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep nonuniform" in out

    def test_run_shares_one_executor_across_experiments(self, monkeypatch):
        """The CLI builds exactly one executor for a multi-experiment run."""
        from repro.sweep import executor as executor_mod

        created = []
        original = executor_mod.make_executor

        def counting(*args, **kwargs):
            ex = original(*args, **kwargs)
            created.append(ex)
            return ex

        monkeypatch.setattr(
            "repro.sweep.executor.make_executor", counting
        )
        assert main(["run", "E1", "E9", "--quick", "--no-cache"]) == 0
        assert len(created) == 1


class TestTraceCommand:
    def _traced_sweep(self, tmp_path):
        trace_file = tmp_path / "sweep.trace.jsonl"
        assert (
            main(
                ["sweep", "nonuniform", "--distances", "8,16",
                 "--ks", "1,4", "--trials", "10", "--seed", "3",
                 "--no-cache", "--trace", str(trace_file)]
            )
            == 0
        )
        return trace_file

    def test_parse_trace_arguments(self):
        args = build_parser().parse_args(
            ["trace", "report", "t.jsonl", "--top", "5"]
        )
        assert args.command == "trace"
        assert args.trace_command == "report"
        assert args.file == "t.jsonl" and args.top == 5

    def test_sweep_trace_records_schema_valid_events(self, tmp_path, capsys):
        from repro.obs import read_trace, trace_metrics, validate_event

        trace_file = self._traced_sweep(tmp_path)
        capsys.readouterr()
        records = read_trace(str(trace_file))
        assert [p for r in records for p in validate_event(r)] == []
        assert trace_metrics(records) is not None  # scoped trace footer

    def test_trace_validate_and_report(self, tmp_path, capsys):
        trace_file = self._traced_sweep(tmp_path)
        capsys.readouterr()
        assert main(["trace", "validate", str(trace_file)]) == 0
        assert "all schema-valid" in capsys.readouterr().out
        assert main(["trace", "report", str(trace_file), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "worker utilization" in out
        assert "cells by submit-to-collect time" in out

    def test_trace_validate_flags_bad_events(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "bad.jsonl"
        trace_file.write_text(
            json.dumps({"schema": 1, "name": "no.such.event",
                        "type": "counter", "ts": 1.0, "seq": 1, "pid": 1,
                        "data": {}}) + "\n"
        )
        assert main(["trace", "validate", str(trace_file)]) == 1
        assert "unknown event name" in capsys.readouterr().out

    def test_trace_export_chrome(self, tmp_path, capsys):
        import json

        trace_file = self._traced_sweep(tmp_path)
        out_file = tmp_path / "chrome.json"
        assert (
            main(["trace", "export", str(trace_file), "--chrome",
                  "-o", str(out_file)])
            == 0
        )
        document = json.loads(out_file.read_text())
        assert document["traceEvents"]
        phases = {event["ph"] for event in document["traceEvents"]}
        assert "X" in phases

    def test_trace_commands_reject_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace file"):
            main(["trace", "report", str(tmp_path / "absent.jsonl")])
