"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults_to_quick(self):
        args = build_parser().parse_args(["run", "E1"])
        assert args.command == "run" and not args.full

    def test_run_full_flag(self):
        args = build_parser().parse_args(["run", "E1", "--full"])
        assert args.full

    def test_quick_and_full_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "E1", "--quick", "--full"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E10" in out and "Theorem 3.1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "E8", "--quick", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "completed" in out

    def test_run_with_csv_export(self, tmp_path, capsys):
        csv_dir = tmp_path / "tables"
        assert main(["run", "E8", "--seed", "7", "--csv", str(csv_dir)]) == 0
        files = list(csv_dir.glob("e8_*.csv"))
        assert files

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "E42"])

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Treasure" in out and "mean" in out


class TestSweepCommand:
    def test_parse_sweep_arguments(self):
        args = build_parser().parse_args(
            [
                "sweep", "uniform",
                "--distances", "16,32",
                "--ks", "1,4",
                "--param", "eps=0.5",
                "--workers", "2",
                "--no-cache",
            ]
        )
        assert args.command == "sweep"
        assert args.algorithm == "uniform"
        assert args.param == ["eps=0.5"]
        assert args.workers == 2 and args.no_cache

    def test_sweep_prints_cell_table(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8,16",
                    "--ks", "1,4",
                    "--trials", "10",
                    "--seed", "3",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep nonuniform" in out and "ratio" in out
        assert "computed" in out
        # A second identical invocation is served from the cache.
        assert (
            main(
                [
                    "sweep", "nonuniform",
                    "--distances", "8,16",
                    "--ks", "1,4",
                    "--trials", "10",
                    "--seed", "3",
                    "--cache-dir", str(tmp_path),
                ]
            )
            == 0
        )
        assert "(cache)" in capsys.readouterr().out

    def test_sweep_csv_export(self, tmp_path, capsys):
        csv_file = tmp_path / "cells.csv"
        assert (
            main(
                [
                    "sweep", "harmonic",
                    "--param", "delta=0.5",
                    "--distances", "8",
                    "--ks", "4",
                    "--trials", "10",
                    "--no-cache",
                    "--csv", str(csv_file),
                ]
            )
            == 0
        )
        assert csv_file.exists()

    def test_sweep_rejects_bad_param(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "uniform",
                    "--distances", "8",
                    "--ks", "1",
                    "--param", "eps",
                ]
            )

    def test_sweep_rejects_bad_distances(self):
        with pytest.raises(SystemExit):
            main(["sweep", "uniform", "--distances", "8,x", "--ks", "1"])

    def test_sweep_rejects_bad_trials_cleanly(self):
        with pytest.raises(SystemExit):
            main(["sweep", "uniform", "--distances", "8", "--ks", "1", "--trials", "0"])
