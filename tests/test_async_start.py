"""Tests for asynchronous start times (the Section 2 synchrony remark).

The paper assumes simultaneous starts but notes the assumption "can easily
be removed by starting to count the time after the last agent initiates
the search".  The vectorised engine models per-agent delays; these tests
check the remark quantitatively.
"""

import numpy as np
import pytest

from repro.algorithms import NonUniformSearch
from repro.sim.events import simulate_find_times
from repro.sim.world import place_treasure


class TestStartDelays:
    def test_zero_delays_match_default(self):
        world = place_treasure(12, "offaxis")
        a = simulate_find_times(NonUniformSearch(k=4), world, 4, 40, seed=5)
        b = simulate_find_times(
            NonUniformSearch(k=4),
            world,
            4,
            40,
            seed=5,
            start_delays=np.zeros(4),
        )
        assert np.array_equal(a, b)

    def test_delays_never_speed_up_search(self):
        world = place_treasure(12, "offaxis")
        sync = simulate_find_times(NonUniformSearch(k=4), world, 4, 60, seed=6)
        delayed = simulate_find_times(
            NonUniformSearch(k=4),
            world,
            4,
            60,
            seed=6,
            start_delays=np.array([0.0, 50.0, 100.0, 150.0]),
        )
        assert delayed.mean() >= sync.mean()

    def test_uniform_delay_shifts_times_exactly(self):
        world = place_treasure(10, "offaxis")
        sync = simulate_find_times(NonUniformSearch(k=3), world, 3, 50, seed=7)
        shifted = simulate_find_times(
            NonUniformSearch(k=3),
            world,
            3,
            50,
            seed=7,
            start_delays=np.full(3, 25.0),
        )
        assert np.allclose(shifted, sync + 25.0)

    def test_counting_from_last_start_restores_bound(self):
        """The paper's remark: measured from the last start, the expected
        time matches the synchronous bound."""
        world = place_treasure(12, "offaxis")
        delay = 200.0
        sync = simulate_find_times(NonUniformSearch(k=4), world, 4, 80, seed=8)
        staggered = simulate_find_times(
            NonUniformSearch(k=4),
            world,
            4,
            80,
            seed=8,
            start_delays=np.array([0.0, delay / 2, delay / 2, delay]),
        )
        renormalised = staggered - delay
        # From the last start, staggered searches are at least as good as a
        # fresh synchronous run (early starters have covered ground).
        assert renormalised.mean() <= sync.mean() + 5 * sync.std() / np.sqrt(80)

    def test_per_trial_delays_shape(self):
        world = place_treasure(8, "offaxis")
        delays = np.zeros((30, 2))
        delays[:, 1] = 10.0
        times = simulate_find_times(
            NonUniformSearch(k=2), world, 2, 30, seed=9, start_delays=delays
        )
        assert times.shape == (30,)

    def test_rejects_negative_delays(self):
        world = place_treasure(8, "offaxis")
        with pytest.raises(ValueError):
            simulate_find_times(
                NonUniformSearch(k=2),
                world,
                2,
                5,
                seed=10,
                start_delays=np.array([0.0, -1.0]),
            )
