"""Tests for asynchronous start times (the Section 2 synchrony remark).

The paper assumes simultaneous starts but notes the assumption "can easily
be removed by starting to count the time after the last agent initiates
the search".  Every engine models per-agent delays — the scalar excursion
engine, the batched multi-world engine, the walker engine, and the step
engine — and these tests check the remark quantitatively on each.
"""

import numpy as np
import pytest

from repro.algorithms import NonUniformSearch
from repro.sim.events import simulate_find_times, simulate_find_times_batch
from repro.sim.walkers import BiasedWalker, LevyWalker, RandomWalker
from repro.sim.world import place_treasure


class TestStartDelays:
    def test_zero_delays_match_default(self):
        world = place_treasure(12, "offaxis")
        a = simulate_find_times(NonUniformSearch(k=4), world, 4, 40, seed=5)
        b = simulate_find_times(
            NonUniformSearch(k=4),
            world,
            4,
            40,
            seed=5,
            start_delays=np.zeros(4),
        )
        assert np.array_equal(a, b)

    def test_delays_never_speed_up_search(self):
        world = place_treasure(12, "offaxis")
        sync = simulate_find_times(NonUniformSearch(k=4), world, 4, 60, seed=6)
        delayed = simulate_find_times(
            NonUniformSearch(k=4),
            world,
            4,
            60,
            seed=6,
            start_delays=np.array([0.0, 50.0, 100.0, 150.0]),
        )
        assert delayed.mean() >= sync.mean()

    def test_uniform_delay_shifts_times_exactly(self):
        world = place_treasure(10, "offaxis")
        sync = simulate_find_times(NonUniformSearch(k=3), world, 3, 50, seed=7)
        shifted = simulate_find_times(
            NonUniformSearch(k=3),
            world,
            3,
            50,
            seed=7,
            start_delays=np.full(3, 25.0),
        )
        assert np.allclose(shifted, sync + 25.0)

    def test_counting_from_last_start_restores_bound(self):
        """The paper's remark: measured from the last start, the expected
        time matches the synchronous bound."""
        world = place_treasure(12, "offaxis")
        delay = 200.0
        sync = simulate_find_times(NonUniformSearch(k=4), world, 4, 80, seed=8)
        staggered = simulate_find_times(
            NonUniformSearch(k=4),
            world,
            4,
            80,
            seed=8,
            start_delays=np.array([0.0, delay / 2, delay / 2, delay]),
        )
        renormalised = staggered - delay
        # From the last start, staggered searches are at least as good as a
        # fresh synchronous run (early starters have covered ground).
        assert renormalised.mean() <= sync.mean() + 5 * sync.std() / np.sqrt(80)

    def test_per_trial_delays_shape(self):
        world = place_treasure(8, "offaxis")
        delays = np.zeros((30, 2))
        delays[:, 1] = 10.0
        times = simulate_find_times(
            NonUniformSearch(k=2), world, 2, 30, seed=9, start_delays=delays
        )
        assert times.shape == (30,)

    def test_rejects_negative_delays(self):
        world = place_treasure(8, "offaxis")
        with pytest.raises(ValueError):
            simulate_find_times(
                NonUniformSearch(k=2),
                world,
                2,
                5,
                seed=10,
                start_delays=np.array([0.0, -1.0]),
            )


class TestBatchStartDelays:
    """The batched multi-world engine honours delays like the scalar one."""

    def test_zero_delays_match_default(self):
        worlds = [place_treasure(d, "offaxis") for d in (8, 12, 16)]
        a = simulate_find_times_batch(
            NonUniformSearch(k=4), worlds, 4, 40, seed=21
        )
        b = simulate_find_times_batch(
            NonUniformSearch(k=4), worlds, 4, 40, seed=21,
            start_delays=np.zeros(4),
        )
        assert np.array_equal(a, b)

    def test_uniform_delay_shifts_every_world_exactly(self):
        worlds = [place_treasure(d, "offaxis") for d in (8, 12)]
        sync = simulate_find_times_batch(
            NonUniformSearch(k=3), worlds, 3, 50, seed=22
        )
        shifted = simulate_find_times_batch(
            NonUniformSearch(k=3), worlds, 3, 50, seed=22,
            start_delays=np.full(3, 40.0),
        )
        assert np.allclose(shifted, sync + 40.0)

    def test_delays_never_speed_up_any_world(self):
        worlds = [place_treasure(d, "offaxis") for d in (8, 12, 16)]
        sync = simulate_find_times_batch(
            NonUniformSearch(k=4), worlds, 4, 60, seed=23
        )
        delayed = simulate_find_times_batch(
            NonUniformSearch(k=4), worlds, 4, 60, seed=23,
            start_delays=np.array([0.0, 30.0, 60.0, 90.0]),
        )
        assert np.all(delayed.mean(axis=1) >= sync.mean(axis=1))

    def test_rejects_negative_delays(self):
        worlds = [place_treasure(8, "offaxis")]
        with pytest.raises(ValueError):
            simulate_find_times_batch(
                NonUniformSearch(k=2), worlds, 2, 5, seed=24,
                start_delays=np.array([0.0, -1.0]),
            )


class TestWalkerStartDelays:
    """Walkers honour delays too (previously an events-engine exclusive)."""

    @pytest.mark.parametrize(
        "walker",
        [RandomWalker(), BiasedWalker(0.9), LevyWalker(2.0)],
        ids=lambda w: w.name,
    )
    def test_zero_delays_match_default(self, walker):
        world = place_treasure(5, "offaxis")
        a = walker.find_times(world, 3, 40, seed=25, horizon=4000)
        b = walker.find_times(
            world, 3, 40, seed=25, horizon=4000, start_delays=np.zeros(3)
        )
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "walker",
        [RandomWalker(), BiasedWalker(0.9), LevyWalker(2.0)],
        ids=lambda w: w.name,
    )
    def test_uniform_delay_shifts_times_exactly(self, walker):
        # With every walker delayed by d and the horizon extended by d,
        # the simulation is step-for-step the undelayed one shifted in
        # wall-clock: identical RNG consumption, identical hits.
        world = place_treasure(4, "offaxis")
        delay = 512.0
        base = walker.find_times(world, 2, 40, seed=26, horizon=3584)
        delayed = walker.find_times(
            world, 2, 40, seed=26, horizon=3584 + delay,
            start_delays=np.full(2, delay),
        )
        finite = np.isfinite(base)
        assert np.array_equal(np.isfinite(delayed), finite)
        assert np.array_equal(delayed[finite], base[finite] + delay)

    def test_per_trial_delays_shape(self):
        world = place_treasure(4, "offaxis")
        delays = np.zeros((30, 2))
        delays[:, 1] = 100.0
        times = RandomWalker().find_times(
            world, 2, 30, seed=27, horizon=2000, start_delays=delays
        )
        assert times.shape == (30,)
