"""Tests for the exact step-level engine (repro.sim.engine)."""

import numpy as np
import pytest

from repro.algorithms import NonUniformSearch, SingleSpiralSearch
from repro.sim.engine import first_visit_times, run_agent, run_search
from repro.sim.world import World, place_treasure


class TestRunAgent:
    def test_spiral_agent_finds_treasure_exactly(self):
        world = World((1, 1))  # spiral hit time 2
        trace = run_agent(SingleSpiralSearch(), world, np.random.default_rng(0), 100)
        assert trace.find_time == 2

    def test_horizon_truncates(self):
        world = World((50, 50))
        trace = run_agent(SingleSpiralSearch(), world, np.random.default_rng(0), 10)
        assert trace.find_time is None
        assert trace.steps == 10

    def test_zero_horizon(self):
        world = World((1, 0))
        trace = run_agent(SingleSpiralSearch(), world, np.random.default_rng(0), 0)
        assert trace.find_time is None and trace.steps == 0

    def test_record_visits_maps_first_times(self):
        world = World((30, 30))
        trace = run_agent(
            SingleSpiralSearch(),
            world,
            np.random.default_rng(0),
            20,
            record_visits=True,
        )
        assert trace.visited is not None
        assert trace.visited[(0, 0)] == 0
        assert trace.visited[(1, 0)] == 1
        assert trace.visited[(1, 1)] == 2
        assert len(trace.visited) == 21  # spiral never revisits

    def test_stop_at_find_false_walks_full_horizon(self):
        world = World((1, 0))
        trace = run_agent(
            SingleSpiralSearch(),
            world,
            np.random.default_rng(0),
            50,
            record_visits=True,
            stop_at_find=False,
        )
        assert trace.find_time == 1
        assert trace.steps == 50

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            run_agent(SingleSpiralSearch(), World((1, 0)), np.random.default_rng(0), -1)


class TestRunSearch:
    def test_finds_with_multiple_agents(self):
        world = place_treasure(5, "axis")
        run = run_search(NonUniformSearch(k=4), world, 4, seed=42, horizon=50_000)
        assert run.result.found
        assert run.result.finder is not None
        assert run.result.time >= 5  # cannot beat distance

    def test_deterministic_given_seed(self):
        world = place_treasure(6, "corner")
        a = run_search(NonUniformSearch(k=2), world, 2, seed=7, horizon=50_000)
        b = run_search(NonUniformSearch(k=2), world, 2, seed=7, horizon=50_000)
        assert a.result.time == b.result.time
        assert a.result.finder == b.result.finder

    def test_different_seeds_vary(self):
        world = place_treasure(8, "corner")
        times = {
            run_search(NonUniformSearch(k=2), world, 2, seed=s, horizon=10**6).result.time
            for s in range(6)
        }
        assert len(times) > 1

    def test_prune_matches_unpruned(self):
        world = place_treasure(5, "axis")
        a = run_search(NonUniformSearch(k=3), world, 3, seed=3, horizon=10**6, prune=True)
        b = run_search(NonUniformSearch(k=3), world, 3, seed=3, horizon=10**6, prune=False)
        assert a.result.time == b.result.time

    def test_not_found_reports_infinite_time(self):
        world = place_treasure(1000, "axis")
        run = run_search(SingleSpiralSearch(), world, 2, seed=0, horizon=100)
        assert not run.result.found
        assert run.result.time == float("inf")

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            run_search(SingleSpiralSearch(), place_treasure(2), 0, seed=0, horizon=10)


class TestFirstVisitTimes:
    def test_every_agent_walks_full_window(self):
        world = place_treasure(10_000, "axis")  # unreachable
        maps = first_visit_times(NonUniformSearch(k=2), world, 2, seed=5, horizon=300)
        assert len(maps) == 2
        for visits in maps:
            assert visits[(0, 0)] == 0
            assert max(visits.values()) <= 300
            assert len(visits) >= 2

    def test_visit_counts_bounded_by_time(self):
        world = place_treasure(10_000, "axis")
        maps = first_visit_times(NonUniformSearch(k=3), world, 3, seed=6, horizon=200)
        for visits in maps:
            assert len(visits) <= 201  # at most horizon+1 distinct cells


class TestStepsSimulatedReporting:
    """Regression: steps_simulated must reflect work done, not the horizon."""

    def test_pruned_run_reports_actual_total_steps(self):
        world = place_treasure(8, "corner")
        run = run_search(NonUniformSearch(k=3), world, 3, seed=3, horizon=10_000)
        assert run.result.found
        per_trace = sum(trace.steps for trace in run.traces)
        assert run.result.steps_simulated == per_trace
        # Pruning caps later agents at the best find time, so the total is
        # far below the k * horizon the old code implied.
        assert run.result.steps_simulated < 3 * 10_000

    def test_not_found_reports_full_walks(self):
        world = place_treasure(1000, "axis")
        run = run_search(SingleSpiralSearch(), world, 2, seed=0, horizon=100)
        assert not run.result.found
        assert run.result.steps_simulated == 200

    def test_early_find_reports_short_walk(self):
        world = World((1, 1))  # spiral hit time 2
        run = run_search(SingleSpiralSearch(), world, 1, seed=0, horizon=10**6)
        assert run.result.found
        assert run.result.steps_simulated == run.result.time == 2
