"""Deep checks of the harmonic algorithm against the Theorem 5.1 proof.

The proof's skeleton: (i) the target distribution is exactly
``p(u) = c / d(u)^(2+delta)``; (ii) for a treasure at distance ``D``, the
ball ``B_lambda`` of radius ``sqrt(lambda D)/2`` around it consists of
cells ``u`` with ``3D/4 < d(u) < 5D/4`` from which a ``d(u)^(2+delta)``
spiral finds the treasure; (iii) one agent lands in ``B_lambda`` with
probability ``>= c*lambda / (4 D^(1+delta))``.  Each step is measured here.
"""

import math

import numpy as np
import pytest
from scipy.special import zeta

from repro.algorithms.harmonic import (
    PowerLawRingFamily,
    harmonic_normalizing_constant,
)
from repro.core.spiral import spiral_hit_time_array
from repro.sim.world import place_treasure


class TestTargetDistribution:
    def test_cell_probabilities_match_closed_form(self):
        """Empirical P(u) for specific cells vs c / d^(2+delta)."""
        delta = 0.5
        family = PowerLawRingFamily(delta)
        rng = np.random.default_rng(0)
        n = 400_000
        ux, uy, _ = family.sample(rng, n)
        c = harmonic_normalizing_constant(delta)
        for cell in [(1, 0), (0, -1), (2, 1), (-3, 0)]:
            d = abs(cell[0]) + abs(cell[1])
            expected = c / d ** (2 + delta)
            observed = float(np.mean((ux == cell[0]) & (uy == cell[1])))
            se = math.sqrt(expected / n)
            assert observed == pytest.approx(expected, abs=5 * se + 2e-4)

    def test_normalizer_uses_zeta(self):
        assert harmonic_normalizing_constant(0.5) == pytest.approx(
            1.0 / (4.0 * zeta(1.5))
        )


class TestBLambdaGeometry:
    """Step (ii) of the proof at a concrete scale."""

    DELTA = 0.5
    D = 40

    def b_lambda_cells(self, lam):
        """Cells within sqrt(lam*D)/2 of the treasure (L1)."""
        world = place_treasure(self.D, "offaxis")
        tx, ty = world.treasure
        radius = int(math.sqrt(lam * self.D) / 2)
        cells = []
        for dx in range(-radius, radius + 1):
            for dy in range(-radius, radius + 1):
                if abs(dx) + abs(dy) <= radius:
                    cells.append((tx + dx, ty + dy))
        return cells, world

    def test_b_lambda_cells_are_mid_annulus(self):
        """All of B_lambda sits in (3D/4, 5D/4) when lambda < D/4."""
        lam = self.D / 5
        cells, _ = self.b_lambda_cells(lam)
        for x, y in cells:
            d = abs(x) + abs(y)
            assert 3 * self.D / 4 - 1 <= d <= 5 * self.D / 4 + 1

    def test_spiral_from_b_lambda_finds_treasure_in_budget(self):
        """From u in B_lambda, the d(u)^(2+delta) budget reaches tau."""
        lam = self.D / 5
        cells, world = self.b_lambda_cells(lam)
        tx, ty = world.treasure
        xs = np.array([c[0] for c in cells])
        ys = np.array([c[1] for c in cells])
        hits = spiral_hit_time_array(tx - xs, ty - ys)
        budgets = np.floor((np.abs(xs) + np.abs(ys)).astype(float) ** (2 + self.DELTA))
        assert np.all(hits <= budgets)

    def test_landing_probability_bound(self):
        """P(one draw lands in B_lambda) >= c*lambda/(4 D^(1+delta)) * (1-o)."""
        lam = self.D / 5
        cells, _ = self.b_lambda_cells(lam)
        cell_set = set(cells)
        family = PowerLawRingFamily(self.DELTA)
        rng = np.random.default_rng(1)
        n = 300_000
        ux, uy, _ = family.sample(rng, n)
        landed = sum(
            1 for x, y in zip(ux.tolist(), uy.tolist()) if (x, y) in cell_set
        )
        observed = landed / n
        c = harmonic_normalizing_constant(self.DELTA)
        proof_bound = c * lam / (4.0 * self.D ** (1 + self.DELTA))
        assert observed >= 0.8 * proof_bound


class TestSuccessProbabilityFormula:
    def test_k_agent_success_matches_independent_trials(self):
        """P(at least one of k lands in B_lambda) = 1-(1-p)^k exactly by
        independence; verify the simulator's agents are independent."""
        delta, d_treasure = 0.5, 16
        world = place_treasure(d_treasure, "offaxis")
        family = PowerLawRingFamily(delta)
        rng = np.random.default_rng(2)
        n = 200_000
        ux, uy, budgets = family.sample(rng, n)
        tx, ty = world.treasure
        far = (np.abs(tx - ux) > 2**30) | (np.abs(ty - uy) > 2**30)
        hit = np.full(n, False)
        near = ~far
        hit[near] = (
            spiral_hit_time_array(tx - ux[near], ty - uy[near]) <= budgets[near]
        )
        p1 = float(np.mean(hit))
        k = 8
        groups = hit[: (n // k) * k].reshape(-1, k)
        pk = float(np.mean(groups.any(axis=1)))
        assert pk == pytest.approx(1 - (1 - p1) ** k, abs=0.01)
