"""Tests for statistical estimators (repro.analysis.estimators)."""

import math

import numpy as np
import pytest

from repro.analysis.estimators import (
    Welford,
    mean_with_ci,
    quantiles,
    success_rate,
    truncated_mean,
    wilson_interval,
)


class TestMeanWithCI:
    def test_point_estimate(self):
        mean, (lo, hi) = mean_with_ci([1.0, 2.0, 3.0], seed=0)
        assert mean == pytest.approx(2.0)
        assert lo <= mean <= hi

    def test_interval_covers_truth_usually(self):
        rng = np.random.default_rng(1)
        covered = 0
        for i in range(40):
            data = rng.normal(10, 2, size=60)
            _, (lo, hi) = mean_with_ci(data, seed=i)
            covered += lo <= 10 <= hi
        assert covered >= 32  # ~95% nominal; allow slack

    def test_single_sample(self):
        mean, (lo, hi) = mean_with_ci([5.0])
        assert mean == lo == hi == 5.0

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            mean_with_ci([1.0, math.inf])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_with_ci([])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            mean_with_ci([1.0, 2.0], confidence=1.5)


class TestTruncatedMean:
    def test_clips_inf_at_horizon(self):
        tm = truncated_mean([10.0, math.inf], horizon=100)
        assert tm.mean == pytest.approx(55.0)
        assert tm.censored_fraction == pytest.approx(0.5)
        assert tm.is_lower_bound

    def test_no_censoring(self):
        tm = truncated_mean([1.0, 2.0], horizon=10)
        assert tm.mean == pytest.approx(1.5)
        assert not tm.is_lower_bound

    def test_values_beyond_horizon_clipped(self):
        tm = truncated_mean([5.0, 200.0], horizon=100)
        assert tm.mean == pytest.approx(52.5)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            truncated_mean([1.0], horizon=math.inf)


class TestSuccessRate:
    def test_counts_finite_within_horizon(self):
        assert success_rate([1.0, math.inf, 50.0], horizon=10) == pytest.approx(1 / 3)

    def test_no_horizon_counts_all_finite(self):
        assert success_rate([1.0, math.inf]) == pytest.approx(0.5)


class TestWilson:
    def test_contains_mle(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_extremes_stay_in_unit_interval(self):
        lo, hi = wilson_interval(0, 20)
        assert lo == 0.0 and hi > 0
        lo, hi = wilson_interval(20, 20)
        assert hi == 1.0 and lo < 1

    def test_narrows_with_n(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestQuantiles:
    def test_median_of_odd(self):
        assert quantiles([3.0, 1.0, 2.0], (0.5,)) == (2.0,)

    def test_inf_sorts_last(self):
        qs = quantiles([1.0, 2.0, math.inf], (0.0, 1.0))
        assert qs[0] == 1.0 and math.isinf(qs[1])

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            quantiles([1.0], (1.2,))


class TestWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=500)
        acc = Welford()
        acc.extend(data.tolist())
        assert acc.mean == pytest.approx(float(data.mean()), abs=1e-12)
        assert acc.variance == pytest.approx(float(data.var(ddof=1)), rel=1e-10)
        assert acc.count == 500

    def test_rejects_non_finite(self):
        acc = Welford()
        with pytest.raises(ValueError):
            acc.add(math.nan)

    def test_variance_needs_two(self):
        acc = Welford()
        acc.add(1.0)
        with pytest.raises(ValueError):
            _ = acc.variance

    def test_mean_needs_one(self):
        with pytest.raises(ValueError):
            _ = Welford().mean
