"""Tests for the vectorised excursion engine (repro.sim.events)."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    HarmonicSearch,
    NonUniformSearch,
    RestartingHarmonicSearch,
    UniformSearch,
)
from repro.analysis.competitiveness import optimal_time
from repro.sim.events import (
    excursion_find_time,
    expected_find_time,
    simulate_find_times,
)
from repro.sim.rng import derive_rng
from repro.sim.world import World, place_treasure


class TestSimulateFindTimes:
    def test_shape_and_dtype(self):
        world = place_treasure(8, "corner")
        times = simulate_find_times(NonUniformSearch(k=4), world, 4, 25, seed=0)
        assert times.shape == (25,)
        assert times.dtype == np.float64

    def test_always_finds_with_iterated_schedule(self):
        world = place_treasure(12, "corner")
        times = simulate_find_times(NonUniformSearch(k=2), world, 2, 50, seed=1)
        assert np.all(np.isfinite(times))

    def test_time_at_least_distance(self):
        """No agent can stand on the treasure before D steps."""
        world = place_treasure(16, "corner")
        for alg in (NonUniformSearch(k=8), UniformSearch(0.5), HarmonicSearch(0.5)):
            times = simulate_find_times(alg, world, 8, 40, seed=2)
            finite = times[np.isfinite(times)]
            assert np.all(finite >= 16)

    def test_reproducible_given_seed(self):
        world = place_treasure(10, "corner")
        a = simulate_find_times(UniformSearch(0.3), world, 4, 30, seed=9)
        b = simulate_find_times(UniformSearch(0.3), world, 4, 30, seed=9)
        assert np.array_equal(a, b)

    def test_one_shot_harmonic_can_fail(self):
        world = place_treasure(60, "corner")
        times = simulate_find_times(HarmonicSearch(0.8), world, 1, 200, seed=3)
        assert np.any(~np.isfinite(times))  # single agent one-shot often misses

    def test_more_agents_do_not_hurt(self):
        world = place_treasure(48, "corner")
        mean_small = simulate_find_times(
            NonUniformSearch(k=2), world, 2, 150, seed=4
        ).mean()
        mean_large = simulate_find_times(
            NonUniformSearch(k=32), world, 32, 150, seed=5
        ).mean()
        assert mean_large < mean_small

    def test_horizon_truncates_to_inf(self):
        world = place_treasure(40, "corner")
        times = simulate_find_times(
            NonUniformSearch(k=1), world, 1, 20, seed=6, horizon=45
        )
        # Cannot reach + spiral a distance-40 treasure by time 45.
        assert np.all(~np.isfinite(times))

    def test_max_phases_guard(self):
        world = place_treasure(10**6, "corner")
        with pytest.raises(RuntimeError):
            simulate_find_times(
                NonUniformSearch(k=1), world, 1, 2, seed=7, max_phases=5
            )

    def test_rejects_bad_arguments(self):
        world = place_treasure(4, "corner")
        with pytest.raises(ValueError):
            simulate_find_times(NonUniformSearch(k=1), world, 0, 5, seed=0)
        with pytest.raises(ValueError):
            simulate_find_times(NonUniformSearch(k=1), world, 1, 0, seed=0)


class TestTravelDetection:
    def test_treasure_on_outbound_axis_found_during_travel(self):
        """A treasure on the +x axis is crossed by every x-first walk past it."""
        world = World((2, 0))
        # Radius-4 phases routinely travel through (2, 0); find times must
        # sometimes equal exactly 2 (outbound travel detection).
        times = simulate_find_times(NonUniformSearch(k=1), world, 1, 200, seed=8)
        assert times.min() == 2.0

    def test_scalar_engine_detects_travel_hits(self):
        world = World((3, 0))
        hits = 0
        for i in range(200):
            t = excursion_find_time(NonUniformSearch(k=1), world, derive_rng(0, i))
            if t == 3:
                hits += 1
        assert hits > 0


class TestExpectedFindTime:
    def test_mean_and_stderr(self):
        world = place_treasure(10, "corner")
        mean, stderr = expected_find_time(NonUniformSearch(k=4), world, 4, 60, seed=9)
        assert mean > 10
        assert 0 < stderr < mean

    def test_infinite_mean_for_failed_one_shot(self):
        world = place_treasure(500, "corner")
        mean, stderr = expected_find_time(HarmonicSearch(0.8), world, 1, 10, seed=10)
        assert math.isinf(mean)

    def test_single_trial_stderr_is_nan(self):
        """Regression: one finite sample used to report stderr=0.0, silently
        overstating confidence; the documented sentinel is nan."""
        world = place_treasure(10, "corner")
        mean, stderr = expected_find_time(NonUniformSearch(k=2), world, 2, 1, seed=9)
        assert math.isfinite(mean)
        assert math.isnan(stderr)

    def test_single_failed_trial_stderr_is_inf(self):
        world = place_treasure(500, "corner")
        mean, stderr = expected_find_time(HarmonicSearch(0.8), world, 1, 1, seed=10)
        assert math.isinf(mean)
        assert math.isinf(stderr)


class TestScaling:
    def test_nonuniform_is_constant_competitive(self):
        """Headline of Theorem 3.1 at small scale: ratio bounded by a constant."""
        ratios = []
        for d in (16, 32, 64):
            for k in (1, 4, 16):
                world = place_treasure(d, "corner")
                times = simulate_find_times(
                    NonUniformSearch(k=k), world, k, 60, seed=11
                )
                ratios.append(times.mean() / optimal_time(d, k))
        assert max(ratios) < 60  # generous constant; E1 tightens this

    def test_restarting_harmonic_always_finds(self):
        world = place_treasure(30, "corner")
        times = simulate_find_times(
            RestartingHarmonicSearch(0.5), world, 4, 40, seed=12, max_phases=100_000
        )
        assert np.all(np.isfinite(times))
