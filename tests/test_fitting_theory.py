"""Tests for scaling fits and the closed-form theory module."""

import math

import numpy as np
import pytest

from repro.analysis.fitting import FitResult, fit_polylog, fit_power_law, r_squared
from repro.analysis.theory import (
    assertion2_phase_index,
    harmonic_alpha,
    harmonic_failure_bound,
    harmonic_time_bound,
    lower_bound_time,
    nonuniform_stage_time_bound,
    uniform_critical_stage,
    uniform_stage_time,
    zeta_constant,
)


class TestFits:
    def test_power_law_recovers_exponent(self):
        x = np.array([2.0, 4.0, 8.0, 16.0, 32.0])
        y = 3.0 * x**1.7
        fit = fit_power_law(x, y)
        assert fit.b == pytest.approx(1.7, abs=1e-9)
        assert fit.a == pytest.approx(3.0, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_power_law_with_noise(self):
        rng = np.random.default_rng(0)
        x = np.array([2.0**i for i in range(2, 12)])
        y = 5.0 * x**2 * np.exp(rng.normal(0, 0.05, x.size))
        fit = fit_power_law(x, y)
        assert fit.b == pytest.approx(2.0, abs=0.1)
        assert fit.r2 > 0.99

    def test_polylog_recovers_exponent(self):
        x = np.array([4.0, 16.0, 64.0, 256.0, 1024.0])
        y = 2.0 * np.log(x) ** 1.5
        fit = fit_polylog(x, y)
        assert fit.b == pytest.approx(1.5, abs=1e-9)
        assert fit.model == "polylog"

    def test_predict(self):
        fit = FitResult(a=2.0, b=1.0, r2=1.0, model="power")
        assert fit.predict(3.0) == pytest.approx(6.0)
        fit = FitResult(a=2.0, b=2.0, r2=1.0, model="polylog")
        assert fit.predict(math.e) == pytest.approx(2.0)

    def test_polylog_rejects_x_at_most_one(self):
        with pytest.raises(ValueError):
            fit_polylog([1.0, 2.0], [1.0, 2.0])

    def test_power_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])

    def test_r_squared_perfect_and_flat(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0
        assert r_squared(np.array([2.0, 2.0]), np.array([2.0, 2.0])) == 1.0


class TestTheory:
    def test_lower_bound_regimes(self):
        assert lower_bound_time(100, 1) == pytest.approx(2500.0)  # D^2/4k wins
        assert lower_bound_time(100, 10_000) == pytest.approx(100.0)  # D wins

    def test_nonuniform_stage_bound_is_geometric(self):
        # Ratio of consecutive stage bounds tends to 4 in the D^2/k regime.
        b5 = nonuniform_stage_time_bound(5, k=1)
        b6 = nonuniform_stage_time_bound(6, k=1)
        assert 2.0 < b6 / b5 < 5.0

    def test_uniform_stage_time_linear_in_2i(self):
        eps = 0.5
        t8 = uniform_stage_time(8, eps)
        t9 = uniform_stage_time(9, eps)
        assert 1.5 < t9 / t8 < 3.0

    def test_uniform_critical_stage_monotone(self):
        # Larger D needs a later critical stage; more agents an earlier one.
        assert uniform_critical_stage(256, 4, 0.5) >= uniform_critical_stage(64, 4, 0.5)
        assert uniform_critical_stage(256, 64, 0.5) <= uniform_critical_stage(256, 4, 0.5)

    def test_assertion2_phase_index(self):
        assert assertion2_phase_index(1) == 0
        assert assertion2_phase_index(7) == 2
        assert assertion2_phase_index(8) == 3
        with pytest.raises(ValueError):
            assertion2_phase_index(0)

    def test_zeta_constant_decreases_with_delta(self):
        assert zeta_constant(0.2) > zeta_constant(0.5) > zeta_constant(0.8) > 1.0

    def test_harmonic_alpha_grows_as_eps_shrinks(self):
        assert harmonic_alpha(0.01, 0.5) > harmonic_alpha(0.1, 0.5)

    def test_harmonic_failure_bound_decreases_in_k(self):
        b_small = harmonic_failure_bound(10, 64, 0.5)
        b_large = harmonic_failure_bound(10_000, 64, 0.5)
        assert 0 < b_large < b_small <= 1.0

    def test_harmonic_time_bound_formula(self):
        assert harmonic_time_bound(10, 5, 0.5) == pytest.approx(
            10 + 10**2.5 / 5
        )

    def test_input_validation(self):
        with pytest.raises(ValueError):
            zeta_constant(0)
        with pytest.raises(ValueError):
            harmonic_alpha(1.5, 0.5)
        with pytest.raises(ValueError):
            harmonic_failure_bound(0, 10, 0.5)
        with pytest.raises(ValueError):
            uniform_critical_stage(0, 1, 0.5)
