"""Property tests for the streaming statistics subsystem (repro.stats).

The accumulators' contract is distributional: streaming in blocks, in any
grouping and order, must agree with a one-shot NumPy computation over the
concatenated sample.  Merge must be associative and commutative (up to
floating-point rounding), Wilson intervals must actually cover, and the
budget policies must be total orders on "done-ness".
"""

import math

import numpy as np
import pytest

from repro.analysis import estimators
from repro.stats import (
    BudgetPolicy,
    FindTimeAccumulator,
    P2Quantile,
    ReservoirSample,
    StreamingMoments,
    SuccessCounter,
    normal_quantile,
    summarize_times,
    wilson_interval,
)


def random_blocks(rng, n_blocks=6, max_len=40, scale=100.0):
    """A list of random-length float blocks (some possibly empty)."""
    return [
        rng.exponential(scale, size=rng.integers(0, max_len))
        for _ in range(n_blocks)
    ]


class TestStreamingMoments:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_streaming_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng)
        data = np.concatenate(blocks)
        if data.size < 2:
            pytest.skip("degenerate draw")
        acc = StreamingMoments()
        for block in blocks:
            acc.update_block(block)
        assert acc.count == data.size
        assert acc.mean == pytest.approx(float(data.mean()), rel=1e-12)
        assert acc.variance == pytest.approx(
            float(data.var(ddof=1)), rel=1e-9
        )
        assert acc.stderr == pytest.approx(
            float(data.std(ddof=1) / math.sqrt(data.size)), rel=1e-9
        )

    def test_scalar_updates_match_block_update(self):
        rng = np.random.default_rng(7)
        data = rng.normal(50.0, 10.0, size=101)
        one_by_one = StreamingMoments()
        for value in data:
            one_by_one.update(value)
        blockwise = StreamingMoments()
        blockwise.update_block(data)
        assert one_by_one.mean == pytest.approx(blockwise.mean, rel=1e-12)
        assert one_by_one.variance == pytest.approx(
            blockwise.variance, rel=1e-10
        )

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_merge_commutative_and_associative(self, seed):
        rng = np.random.default_rng(seed)
        parts = [rng.exponential(10.0, size=rng.integers(1, 30))
                 for _ in range(3)]

        def acc_of(*blocks):
            acc = StreamingMoments()
            for block in blocks:
                acc.update_block(block)
            return acc

        a, b, c = (acc_of(p) for p in parts)
        ab_c = acc_of(parts[0]).merge(acc_of(parts[1])).merge(acc_of(parts[2]))
        a_bc = acc_of(parts[0]).merge(
            acc_of(parts[1]).merge(acc_of(parts[2]))
        )
        ba = acc_of(parts[1]).merge(acc_of(parts[0]))
        ab = acc_of(parts[0]).merge(acc_of(parts[1]))
        direct = acc_of(*parts)
        for merged in (ab_c, a_bc):
            assert merged.count == direct.count
            assert merged.mean == pytest.approx(direct.mean, rel=1e-12)
            assert merged.variance == pytest.approx(direct.variance, rel=1e-9)
        assert ab.mean == pytest.approx(ba.mean, rel=1e-12)
        assert ab.variance == pytest.approx(ba.variance, rel=1e-9)

    def test_merge_with_empty_is_identity(self):
        acc = StreamingMoments()
        acc.update_block([1.0, 2.0, 3.0])
        before = (acc.count, acc.mean, acc.variance)
        acc.merge(StreamingMoments())
        assert (acc.count, acc.mean, acc.variance) == before
        empty = StreamingMoments()
        empty.merge(acc)
        assert empty.count == 3
        assert empty.mean == pytest.approx(2.0)

    def test_empty_and_single_sentinels(self):
        acc = StreamingMoments()
        assert math.isnan(acc.mean)
        acc.update(5.0)
        assert acc.mean == 5.0
        assert math.isnan(acc.variance)
        assert math.isnan(acc.stderr)
        assert math.isnan(acc.ci_halfwidth())

    def test_rejects_non_finite(self):
        acc = StreamingMoments()
        with pytest.raises(ValueError):
            acc.update(math.inf)
        with pytest.raises(ValueError):
            acc.update_block([1.0, math.nan])

    def test_ci_halfwidth_uses_normal_quantile(self):
        acc = StreamingMoments()
        acc.update_block([10.0, 12.0, 8.0, 11.0, 9.0])
        z = normal_quantile(0.975)
        assert acc.ci_halfwidth(0.95) == pytest.approx(z * acc.stderr)
        assert acc.ci_halfwidth(0.5) < acc.ci_halfwidth(0.99)


class TestSuccessCounter:
    def test_counts_and_merge(self):
        a = SuccessCounter()
        for value in (True, False, True):
            a.update(value)
        b = SuccessCounter(successes=5, total=7)
        a.merge(b)
        assert (a.successes, a.total) == (7, 10)
        assert a.rate == pytest.approx(0.7)

    def test_wilson_matches_estimators_module(self):
        counter = SuccessCounter(successes=30, total=100)
        assert counter.wilson() == pytest.approx(
            estimators.wilson_interval(30, 100)
        )

    def test_wilson_coverage_smoke(self):
        # ~95% Wilson intervals over Bernoulli(p) samples should cover p
        # close to nominally; allow generous slack for a smoke test.
        rng = np.random.default_rng(0)
        for p in (0.1, 0.5, 0.9):
            covered = 0
            n_rep, n = 400, 50
            draws = rng.binomial(n, p, size=n_rep)
            for successes in draws:
                lo, hi = wilson_interval(int(successes), n)
                covered += lo <= p <= hi
            assert covered / n_rep >= 0.88, (p, covered / n_rep)

    def test_validation(self):
        with pytest.raises(ValueError):
            SuccessCounter(successes=5, total=3)
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(3, 2)


class TestP2Quantile:
    def test_exact_below_five_observations(self):
        p2 = P2Quantile(0.5)
        assert math.isnan(p2.value)
        for value in (5.0, 1.0, 3.0):
            p2.update(value)
        assert p2.value == 3.0

    @pytest.mark.parametrize("q", [0.25, 0.5, 0.9])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_tracks_true_quantile(self, q, seed):
        rng = np.random.default_rng(seed)
        data = rng.exponential(100.0, size=4000)
        p2 = P2Quantile(q)
        p2.update_block(data)
        exact = float(np.quantile(data, q))
        spread = float(np.quantile(data, 0.95) - np.quantile(data, 0.05))
        assert abs(p2.value - exact) < 0.05 * spread
        assert p2.count == data.size

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(0.5).update(math.inf)


class TestReservoirSample:
    def test_holds_everything_under_capacity(self):
        res = ReservoirSample(capacity=100, seed=0)
        res.update_block(np.arange(40, dtype=float))
        assert res.seen == 40
        assert sorted(res.values) == list(map(float, range(40)))

    def test_capacity_respected_and_distribution_uniform(self):
        res = ReservoirSample(capacity=64, seed=1)
        data = np.arange(4096, dtype=float)
        res.update_block(data)
        assert res.values.size == 64
        assert res.seen == 4096
        # A uniform subsample's mean should be near the population mean.
        assert abs(res.values.mean() - data.mean()) < 6 * data.std() / 8.0

    def test_merge_into_empty_respects_capacity(self):
        # The empty-self fast path must not adopt a wider donor verbatim:
        # that would freeze slots beyond capacity forever.
        narrow = ReservoirSample(capacity=4, seed=0)
        wide = ReservoirSample(capacity=512, seed=1)
        wide.update_block(np.arange(100, dtype=float))
        narrow.merge(wide)
        assert narrow.seen == 100
        assert narrow.values.size == 4
        narrow.update_block(np.arange(100, 200, dtype=float))
        assert narrow.values.size == 4
        assert narrow.seen == 200

    def test_merge_tracks_combined_population(self):
        rng = np.random.default_rng(2)
        left = rng.normal(0.0, 1.0, size=3000)
        right = rng.normal(10.0, 1.0, size=3000)
        a = ReservoirSample(capacity=128, seed=3)
        a.update_block(left)
        b = ReservoirSample(capacity=128, seed=4)
        b.update_block(right)
        a.merge(b)
        assert a.seen == 6000
        combined_mean = float(np.concatenate([left, right]).mean())
        assert abs(float(a.values.mean()) - combined_mean) < 1.5

    def test_bootstrap_ci_contains_population_mean(self):
        rng = np.random.default_rng(5)
        data = rng.exponential(50.0, size=400)
        res = ReservoirSample(capacity=400, seed=6)
        res.update_block(data)
        lo, hi = res.bootstrap_mean_ci(confidence=0.99)
        assert lo <= float(data.mean()) <= hi
        assert lo < hi


class TestFindTimeAccumulator:
    def test_matches_truncated_mean_and_success_rate(self):
        times = np.array([10.0, 50.0, np.inf, 120.0, np.inf, 30.0])
        horizon = 100.0
        acc = FindTimeAccumulator(horizon=horizon)
        acc.update(times)
        s = acc.summary()
        legacy = estimators.truncated_mean(times, horizon)
        assert s.mean == pytest.approx(legacy.mean, rel=1e-12)
        assert s.censored_fraction == pytest.approx(legacy.censored_fraction)
        assert s.success_rate == pytest.approx(
            estimators.success_rate(times, horizon)
        )
        assert s.is_lower_bound
        assert s.count == times.size

    def test_block_streaming_equals_one_shot(self):
        rng = np.random.default_rng(8)
        times = rng.exponential(100.0, size=257)
        times[rng.random(257) < 0.1] = np.inf
        streamed = FindTimeAccumulator(horizon=300.0)
        for block in np.array_split(times, 7):
            streamed.update(block)
        assert streamed.summary().mean == pytest.approx(
            summarize_times(times, horizon=300.0).mean, rel=1e-12
        )
        assert streamed.summary().censored_fraction == pytest.approx(
            summarize_times(times, horizon=300.0).censored_fraction
        )

    def test_merge_equals_single_pass(self):
        rng = np.random.default_rng(9)
        times = rng.exponential(100.0, size=200)
        left = FindTimeAccumulator(horizon=250.0)
        right = FindTimeAccumulator(horizon=250.0)
        left.update(times[:90])
        right.update(times[90:])
        left.merge(right)
        s = left.summary()
        direct = summarize_times(times, horizon=250.0)
        assert s.count == direct.count
        assert s.mean == pytest.approx(direct.mean, rel=1e-12)
        assert s.stderr == pytest.approx(direct.stderr, rel=1e-9)

    def test_merge_rejects_mismatched_horizon(self):
        with pytest.raises(ValueError):
            FindTimeAccumulator(horizon=10.0).merge(FindTimeAccumulator())

    def test_no_horizon_failures_stay_visible(self):
        acc = FindTimeAccumulator()
        acc.update([10.0, np.inf, 30.0])
        s = acc.summary()
        assert s.mean == pytest.approx(20.0)  # over finding trials only
        assert s.censored_fraction == pytest.approx(1.0 / 3.0)
        assert s.success_rate == pytest.approx(2.0 / 3.0)

    def test_rel_ci_drives_to_inf_when_undefined(self):
        acc = FindTimeAccumulator()
        assert math.isinf(acc.summary().rel_ci)
        acc.update([5.0])
        assert math.isinf(acc.summary().rel_ci)
        acc.update([6.0, 7.0, 8.0])
        assert math.isfinite(acc.summary().rel_ci)

    def test_wilson_bounds_in_summary(self):
        acc = FindTimeAccumulator(horizon=100.0)
        acc.update([10.0] * 90 + [np.inf] * 10)
        s = acc.summary()
        assert s.wilson_low <= s.success_rate <= s.wilson_high
        assert 0.0 <= s.wilson_low < s.wilson_high <= 1.0

    def test_reservoir_quantiles(self):
        acc = FindTimeAccumulator(
            horizon=1000.0, reservoir_capacity=256, quantiles=(0.5,)
        )
        acc.update(np.linspace(1, 500, 200))
        s = acc.summary()
        assert s.quantiles[0.5] == pytest.approx(250.0, rel=0.1)


class TestBudgetPolicy:
    def test_fixed_satisfaction(self):
        policy = BudgetPolicy.fixed(60)
        assert not policy.satisfied(59)
        assert policy.satisfied(60)
        assert policy.is_fixed

    def test_target_rel_ci_satisfaction(self):
        policy = BudgetPolicy.target_rel_ci(
            0.1, min_trials=32, max_trials=128
        )
        tight = summarize_times(np.full(64, 100.0) + np.arange(64) * 0.01)
        loose = summarize_times(np.concatenate([[1.0, 1e6], np.full(62, 100.0)]))
        assert not policy.satisfied(16, tight)  # below min_trials
        assert policy.satisfied(64, tight)
        assert not policy.satisfied(64, loose)
        assert policy.satisfied(128, loose)  # max_trials cap

    def test_wall_satisfaction(self):
        policy = BudgetPolicy.wall(2.0, min_trials=32, max_trials=128)
        assert not policy.satisfied(16, None, elapsed=10.0)
        assert not policy.satisfied(64, None, elapsed=1.0)
        assert policy.satisfied(64, None, elapsed=2.5)
        assert policy.satisfied(128, None, elapsed=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetPolicy.fixed(0)
        with pytest.raises(ValueError):
            BudgetPolicy.target_rel_ci(0.0)
        with pytest.raises(ValueError):
            BudgetPolicy.target_rel_ci(0.1, min_trials=100, max_trials=10)
        with pytest.raises(ValueError):
            BudgetPolicy.wall(0.0)
        with pytest.raises(ValueError):
            BudgetPolicy(kind="nonsense")

    @pytest.mark.parametrize(
        "policy",
        [
            BudgetPolicy.fixed(60),
            BudgetPolicy.target_rel_ci(0.05, min_trials=16, max_trials=512),
            BudgetPolicy.wall(3.5, min_trials=8, max_trials=64),
        ],
    )
    def test_dict_roundtrip(self, policy):
        assert BudgetPolicy.from_dict(policy.to_dict()) == policy

    def test_describe_mentions_kind(self):
        assert "fixed" in BudgetPolicy.fixed(3).describe()
        assert "target_rel_ci" in BudgetPolicy.target_rel_ci(0.1).describe()
        assert "wall" in BudgetPolicy.wall(1.0).describe()
