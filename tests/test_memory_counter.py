"""Tests for the Morris-counter walk (repro.memory.counter)."""

import math

import numpy as np
import pytest

from repro.memory.counter import (
    MorrisCounter,
    randomized_straight_walk,
    walk_distance_samples,
)


class TestMorrisCounter:
    def test_estimate_is_unbiased(self):
        """E[2^X - 2] = n after n adds (exact property of the Morris chain)."""
        rng = np.random.default_rng(0)
        n, reps = 64, 3000
        estimates = []
        for _ in range(reps):
            counter = MorrisCounter(rng)
            for _ in range(n):
                counter.add()
            estimates.append(counter.estimate)
        mean = float(np.mean(estimates))
        stderr = float(np.std(estimates) / math.sqrt(reps))
        assert abs(mean - n) < 5 * stderr + 2.0

    def test_exponent_grows_logarithmically(self):
        rng = np.random.default_rng(1)
        counter = MorrisCounter(rng)
        for _ in range(10_000):
            counter.add()
        assert 7 <= counter.exponent <= 22  # log2(1e4) ~ 13.3, generous band

    def test_bits_used_is_loglog(self):
        rng = np.random.default_rng(2)
        counter = MorrisCounter(rng)
        for _ in range(10_000):
            counter.add()
        assert counter.bits_used <= 6  # vs 14 bits for an exact counter


class TestRandomizedStraightWalk:
    def test_zero_ell_walks_zero(self):
        assert randomized_straight_walk(np.random.default_rng(3), 0) == 0

    def test_expected_distance(self):
        rng = np.random.default_rng(4)
        ell = 6
        walks = [randomized_straight_walk(rng, ell) for _ in range(4000)]
        mean = float(np.mean(walks))
        target = 2.0**ell - 1
        assert abs(mean - target) < 0.15 * target

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            randomized_straight_walk(np.random.default_rng(5), -1)


class TestWalkSamples:
    def test_sample_count(self):
        walks = walk_distance_samples(np.random.default_rng(6), 4, samples=17)
        assert len(walks) == 17

    def test_median_amplification_reduces_spread(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        single = np.asarray(walk_distance_samples(rng1, 6, 800))
        med5 = np.asarray(walk_distance_samples(rng2, 6, 800, median_of=5))
        assert med5.std() < single.std()

    def test_rejects_even_median(self):
        with pytest.raises(ValueError):
            walk_distance_samples(np.random.default_rng(8), 4, 5, median_of=2)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            walk_distance_samples(np.random.default_rng(9), 4, 0)
