"""Checkpoint/resume tests: crash-only sweeps (DESIGN.md §13).

The contract under test:

* while a cached fixed-path sweep runs, completed chunks checkpoint
  into an atomic per-spec journal; a driver killed with ``SIGKILL``
  mid-sweep leaves either the previous journal or the next — never a
  torn file — and the v1 entry is only ever written whole;
* ``run_sweep(..., resume=True)`` after the kill tops the sweep up —
  simulating strictly fewer trials than a cold run — and the result is
  bitwise identical to an uninterrupted run;
* the journal validates spec identity *and* task layout, so a foreign
  or stale journal can never splice wrong chunks into a result;
* adaptive sweeps flush folded blocks on the checkpoint cadence, so a
  killed driver loses at most one interval of work and the block store
  stays loadable.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.stats import BudgetPolicy
from repro.sweep import SweepSpec, run_sweep
from repro.sweep.cache import (
    QUARANTINE_SUFFIX,
    block_store_path,
    cache_path,
    clear_journal,
    journal_path,
    load_journal,
    save_journal,
)
from repro.sweep.runner import _execute_chunk, _fixed_tasks

SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)

#: Shared by the in-process tests and the killed-child scripts below:
#: four k-groups => four fixed tasks, so a mid-sweep kill always lands
#: between checkpoints.
SPEC_ARGS = dict(
    algorithm="nonuniform",
    distances=(8, 16),
    ks=(1, 2, 4, 8),
    trials=50,
    seed=42,
)


def spec_of(**overrides):
    base = dict(SPEC_ARGS)
    base.update(overrides)
    return SweepSpec(**base)


def assert_sweeps_equal(a, b):
    assert len(a.cells) == len(b.cells)
    for x, y in zip(a.cells, b.cells):
        assert (x.distance, x.k) == (y.distance, y.k)
        assert np.array_equal(x.times, y.times), (x.distance, x.k)


def layout_of(spec, workers=1):
    return [(t[1], list(t[2])) for t in _fixed_tasks(spec, workers)]


class TestJournalStore:
    def test_roundtrip_by_task_index(self, tmp_path):
        spec = spec_of()
        tasks = _fixed_tasks(spec, 1)
        layout = layout_of(spec)
        done = {0: _execute_chunk(tasks[0]), 2: _execute_chunk(tasks[2])}
        path = journal_path(spec, str(tmp_path))
        assert save_journal(spec, path, done, layout)
        back = load_journal(spec, path, layout)
        assert sorted(back) == [0, 2]
        for index in back:
            assert np.array_equal(back[index], done[index])

    def test_foreign_spec_loads_empty(self, tmp_path):
        spec = spec_of()
        layout = layout_of(spec)
        path = journal_path(spec, str(tmp_path))
        save_journal(
            spec, path, {0: np.zeros((2, spec.trials))}, layout
        )
        other = spec_of(seed=43)
        assert load_journal(other, path, layout_of(other)) == {}

    def test_layout_drift_drops_mismatched_entries(self, tmp_path):
        # The walker case: task chunking depends on the worker count,
        # so a journal written under one layout must not feed entries
        # into a run whose indices mean different work.
        spec = spec_of()
        layout = layout_of(spec)
        path = journal_path(spec, str(tmp_path))
        save_journal(
            spec, path, {0: np.zeros((2, spec.trials))}, layout
        )
        drifted = [(9, [999])] + layout[1:]
        assert load_journal(spec, path, drifted) == {}

    def test_wrong_shape_entries_are_dropped(self, tmp_path):
        spec = spec_of()
        layout = layout_of(spec)
        path = journal_path(spec, str(tmp_path))
        save_journal(
            spec, path,
            {0: np.zeros((2, spec.trials + 1))},  # trailing-column junk
            layout,
        )
        assert load_journal(spec, path, layout) == {}

    def test_corrupt_journal_is_quarantined(self, tmp_path):
        spec = spec_of()
        path = journal_path(spec, str(tmp_path))
        with open(path, "wb") as handle:
            handle.write(b"not a zip archive")
        assert load_journal(spec, path, layout_of(spec)) == {}
        assert not os.path.exists(path)
        assert os.path.exists(path + QUARANTINE_SUFFIX)

    def test_clear_removes_journal_and_sidecar(self, tmp_path):
        spec = spec_of()
        path = journal_path(spec, str(tmp_path))
        save_journal(
            spec, path, {0: np.zeros((2, spec.trials))}, layout_of(spec)
        )
        clear_journal(path)
        assert not os.path.exists(path)


class TestResumeSemantics:
    def test_completed_run_leaves_no_journal(self, tmp_path):
        spec = spec_of()
        run_sweep(
            spec, cache=True, cache_dir=str(tmp_path), checkpoint_s=0.0
        )
        assert not os.path.exists(journal_path(spec, str(tmp_path)))
        assert os.path.exists(cache_path(spec, str(tmp_path)))

    def test_resume_without_journal_runs_cold(self, tmp_path):
        spec = spec_of()
        clean = run_sweep(spec, cache=False)
        resumed = run_sweep(
            spec, cache=True, cache_dir=str(tmp_path), resume=True
        )
        assert_sweeps_equal(clean, resumed)

    def test_resume_skips_journaled_tasks_bitwise(self, tmp_path):
        spec = spec_of()
        clean = run_sweep(spec, cache=False)
        tasks = _fixed_tasks(spec, 1)
        layout = layout_of(spec)
        done = {0: _execute_chunk(tasks[0]), 1: _execute_chunk(tasks[1])}
        save_journal(
            spec, journal_path(spec, str(tmp_path)), done, layout
        )
        events = []
        resumed = run_sweep(
            spec, cache=True, cache_dir=str(tmp_path), resume=True,
            progress=events.append,
        )
        assert_sweeps_equal(clean, resumed)
        total = sum(c.times.size for c in clean.cells)
        new = sum(e.new_trials for e in events)
        assert 0 < new < total  # topped up, strictly less than cold
        # The journal is consumed into the v1 entry.
        assert not os.path.exists(journal_path(spec, str(tmp_path)))
        assert run_sweep(
            spec, cache=True, cache_dir=str(tmp_path)
        ).from_cache

    def test_checkpoint_none_disables_journaling(self, tmp_path):
        spec = spec_of()
        tasks = _fixed_tasks(spec, 1)
        done = {0: _execute_chunk(tasks[0])}
        save_journal(
            spec, journal_path(spec, str(tmp_path)), done, layout_of(spec)
        )
        events = []
        run_sweep(
            spec, cache=True, cache_dir=str(tmp_path), resume=False,
            checkpoint_s=None, progress=events.append,
        )
        # resume=False + checkpoint_s=None: the journal is neither read
        # nor replaced, and every trial was simulated fresh.
        assert all(e.new_trials > 0 for e in events)
        assert os.path.exists(journal_path(spec, str(tmp_path)))


#: Driver script killed with SIGKILL mid-sweep.  The progress callback
#: sleeps so the parent can land the kill between task checkpoints;
#: ``checkpoint_s=0`` journals after every completed chunk.
_KILLED_FIXED_DRIVER = """\
import sys, time
from repro.sweep import SweepSpec, run_sweep

spec = SweepSpec(**{spec_args!r})

def report(event):
    print(f"cell {{event.distance}} {{event.k}}", flush=True)
    time.sleep(0.2)

run_sweep(
    spec, cache=True, cache_dir=sys.argv[1], workers=1,
    backend="serial", checkpoint_s=0.0, progress=report,
)
print("DONE", flush=True)
"""

_KILLED_ADAPTIVE_DRIVER = """\
import sys
from repro.stats import BudgetPolicy
from repro.sweep import SweepSpec, run_sweep

spec = SweepSpec(
    **{spec_args!r},
    budget=BudgetPolicy.target_rel_ci(1e-9, min_trials=32, max_trials=1024),
)
run_sweep(
    spec, cache=True, cache_dir=sys.argv[1], workers=1,
    backend="serial", checkpoint_s=0.0,
)
print("DONE", flush=True)
"""


def _spawn_driver(script, cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", script, str(cache_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


class TestDriverKill:
    def test_sigkill_then_resume_is_bitwise_and_cheaper(self, tmp_path):
        """The headline property: kill -9 mid-sweep, --resume, bitwise."""
        spec = spec_of()
        script = _KILLED_FIXED_DRIVER.format(spec_args=SPEC_ARGS)
        child = _spawn_driver(script, tmp_path)
        try:
            # Wait until a second k-group starts reporting: the first
            # group's chunk is then definitely journaled (the journal
            # write precedes the next group's progress lines).
            seen_ks = set()
            for _ in range(64):
                line = child.stdout.readline()
                assert line and "DONE" not in line, (
                    "driver finished before the kill landed"
                )
                seen_ks.add(line.split()[-1])
                if len(seen_ks) >= 2:
                    break
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30.0)
        finally:
            if child.poll() is None:
                child.kill()
            child.stdout.close()
            child.stderr.close()
        assert child.returncode == -signal.SIGKILL

        # The kill left a consistent cache directory: a valid journal,
        # no v1 entry, no torn files a resume would trip over.
        journal = journal_path(spec, str(tmp_path))
        assert os.path.exists(journal)
        recovered = load_journal(spec, journal, layout_of(spec))
        assert recovered  # at least the first chunk survived
        assert not os.path.exists(cache_path(spec, str(tmp_path)))

        clean = run_sweep(spec, cache=False)
        events = []
        resumed = run_sweep(
            spec, cache=True, cache_dir=str(tmp_path), workers=1,
            backend="serial", resume=True, progress=events.append,
        )
        assert_sweeps_equal(clean, resumed)
        total = sum(c.times.size for c in clean.cells)
        new = sum(e.new_trials for e in events)
        assert new < total  # strictly fewer trials than a cold run
        assert not os.path.exists(journal)  # consumed into the v1 entry

    def test_sigkill_mid_adaptive_leaves_loadable_store(self, tmp_path):
        spec = spec_of(
            budget=BudgetPolicy.target_rel_ci(
                1e-9, min_trials=32, max_trials=1024
            ),
        )
        script = _KILLED_ADAPTIVE_DRIVER.format(spec_args=SPEC_ARGS)
        child = _spawn_driver(script, tmp_path)
        store = block_store_path(spec, str(tmp_path))
        try:
            # Kill as soon as the first mid-sweep flush lands on disk.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if os.path.exists(store) or child.poll() is not None:
                    break
                time.sleep(0.01)
            if child.poll() is None:
                os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30.0)
        finally:
            if child.poll() is None:
                child.kill()
            child.stdout.close()
            child.stderr.close()

        clean = run_sweep(spec, cache=False)
        events = []
        resumed = run_sweep(
            spec, cache=True, cache_dir=str(tmp_path), workers=1,
            backend="serial", resume=True, progress=events.append,
        )
        assert_sweeps_equal(clean, resumed)
        if child.returncode == -signal.SIGKILL:
            # The flushed prefix gave the resume a real head start.
            total = sum(c.times.size for c in clean.cells)
            assert sum(e.new_trials for e in events) < total
