"""Tests for the scenario layer (repro.scenarios) and its engine threading.

The load-bearing guarantee is *zero-perturbation parity*: every engine
given a default :class:`ScenarioSpec` (no faults, unit speeds, zero
delays, perfect detection) must be bitwise identical to its pre-scenario
behaviour — checked here property-style over engines x algorithms.  On
top of that, each perturbation is checked for its defining behaviour:
crashes cut success, lossy detection slows search (and q=0 never finds),
staggered starts equal explicit delay arrays, and speed ladders keep the
swarm's total edge budget fixed.
"""

import numpy as np
import pytest

from repro.algorithms import (
    HarmonicSearch,
    NonUniformSearch,
    RandomWalkSearch,
    RestartingHarmonicSearch,
    UniformSearch,
)
from repro.scenarios import AgentProfile, ScenarioSpec, resolve_scenario
from repro.sim.engine import run_agent, run_search
from repro.sim.events import simulate_find_times, simulate_find_times_batch
from repro.sim.rng import make_rng
from repro.sim.walkers import BiasedWalker, LevyWalker, RandomWalker
from repro.sim.world import place_treasure

EXCURSION_ALGORITHMS = [
    NonUniformSearch(k=4),
    UniformSearch(0.5),
    HarmonicSearch(0.5),
    RestartingHarmonicSearch(0.5),
]
WALKERS = [RandomWalker(), BiasedWalker(0.9), LevyWalker(2.0)]

#: Scenarios that must be *indistinguishable* from passing no scenario.
NEUTRAL_SCENARIOS = [
    ScenarioSpec(),
    ScenarioSpec(crash_hazard=0.0, speed_spread=0.0,
                 start_stagger=0.0, detection_prob=1.0),
]


class TestScenarioSpec:
    def test_default_is_default(self):
        assert ScenarioSpec().is_default
        assert not ScenarioSpec(crash_hazard=0.1).is_default
        assert not ScenarioSpec(speed_spread=1.0).is_default
        assert not ScenarioSpec(start_stagger=5.0).is_default
        assert not ScenarioSpec(detection_prob=0.5).is_default

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_hazard": -0.1},
            {"crash_hazard": 1.5},
            {"speed_spread": -1.0},
            {"start_stagger": -3.0},
            {"detection_prob": -0.2},
            {"detection_prob": 1.2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpec(**kwargs)

    def test_speed_ladder_mean_one_and_monotone(self):
        for spread in (0.5, 1.0, 3.0):
            for k in (2, 3, 8):
                speeds = ScenarioSpec(speed_spread=spread).speeds(k)
                assert speeds.mean() == pytest.approx(1.0)
                assert np.all(np.diff(speeds) > 0)
                assert speeds[-1] / speeds[0] == pytest.approx(
                    (1.0 + spread) ** 2
                )

    def test_speed_ladder_neutral_cases(self):
        assert np.array_equal(ScenarioSpec(speed_spread=2.0).speeds(1), [1.0])
        assert np.array_equal(ScenarioSpec().speeds(5), np.ones(5))

    def test_delay_ladder(self):
        delays = ScenarioSpec(start_stagger=7.0).delays(4)
        assert np.array_equal(delays, [0.0, 7.0, 14.0, 21.0])

    def test_profiles_match_arrays(self):
        spec = ScenarioSpec(
            crash_hazard=0.01, speed_spread=1.0,
            start_stagger=2.0, detection_prob=0.8,
        )
        profiles = spec.profiles(4)
        assert len(profiles) == 4
        for i, profile in enumerate(profiles):
            assert profile == spec.profile(i, 4)
            assert profile.speed == pytest.approx(spec.speeds(4)[i])
            assert profile.start_delay == 2.0 * i
            assert profile.crash_hazard == 0.01
            assert profile.detection_prob == 0.8
            assert not profile.is_default
        assert AgentProfile().is_default

    def test_profile_rejects_out_of_range_agent(self):
        with pytest.raises(ValueError):
            ScenarioSpec().profile(4, 4)

    def test_dict_roundtrip(self):
        spec = ScenarioSpec(
            crash_hazard=0.05, speed_spread=2.0,
            start_stagger=10.0, detection_prob=0.9,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_dict({}) == ScenarioSpec()

    def test_describe(self):
        assert ScenarioSpec().describe() == "default"
        text = ScenarioSpec(crash_hazard=0.05, detection_prob=0.9).describe()
        assert "crash_hazard=0.05" in text and "detection_prob=0.9" in text

    def test_resolve_scenario(self):
        assert resolve_scenario(None) is None
        assert resolve_scenario(ScenarioSpec()) is None
        active = ScenarioSpec(crash_hazard=0.1)
        assert resolve_scenario(active) is active
        with pytest.raises(TypeError):
            resolve_scenario({"crash_hazard": 0.1})


class TestDefaultParity:
    """The zero-perturbation path is bitwise identical in every engine."""

    @pytest.mark.parametrize(
        "algorithm", EXCURSION_ALGORITHMS, ids=lambda a: a.name
    )
    @pytest.mark.parametrize("scenario", NEUTRAL_SCENARIOS, ids=["plain", "explicit"])
    def test_events_scalar(self, algorithm, scenario):
        world = place_treasure(10, "offaxis")
        base = simulate_find_times(
            algorithm, world, 4, 40, seed=3, horizon=5e4
        )
        same = simulate_find_times(
            algorithm, world, 4, 40, seed=3, horizon=5e4, scenario=scenario
        )
        assert np.array_equal(base, same)

    @pytest.mark.parametrize(
        "algorithm", EXCURSION_ALGORITHMS, ids=lambda a: a.name
    )
    def test_events_batch(self, algorithm):
        worlds = [place_treasure(d, "offaxis") for d in (6, 10, 14)]
        base = simulate_find_times_batch(
            algorithm, worlds, 4, 30, seed=4, horizon=5e4
        )
        same = simulate_find_times_batch(
            algorithm, worlds, 4, 30, seed=4, horizon=5e4,
            scenario=ScenarioSpec(),
        )
        assert np.array_equal(base, same)

    @pytest.mark.parametrize("walker", WALKERS, ids=lambda w: w.name)
    @pytest.mark.parametrize("scenario", NEUTRAL_SCENARIOS, ids=["plain", "explicit"])
    def test_walkers(self, walker, scenario):
        world = place_treasure(5, "offaxis")
        base = walker.find_times(world, 3, 40, seed=5, horizon=4000)
        same = walker.find_times(
            world, 3, 40, seed=5, horizon=4000, scenario=scenario
        )
        assert np.array_equal(base, same)

    @pytest.mark.parametrize(
        "algorithm",
        [NonUniformSearch(k=3), UniformSearch(0.5), RandomWalkSearch()],
        ids=lambda a: a.name,
    )
    def test_step_engine(self, algorithm):
        world = place_treasure(4, "offaxis")
        base = run_search(algorithm, world, 3, seed=6, horizon=3000)
        same = run_search(
            algorithm, world, 3, seed=6, horizon=3000, scenario=ScenarioSpec()
        )
        assert base.result == same.result
        assert [t.find_time for t in base.traces] == [
            t.find_time for t in same.traces
        ]

    def test_k1_speed_ladder_is_neutral(self):
        # With a single agent the ladder collapses to speed 1.0, and
        # dividing by 1.0 is exact: bitwise equality must survive.
        world = place_treasure(10, "offaxis")
        base = simulate_find_times(NonUniformSearch(k=1), world, 1, 40, seed=7)
        same = simulate_find_times(
            NonUniformSearch(k=1), world, 1, 40, seed=7,
            scenario=ScenarioSpec(speed_spread=2.0),
        )
        assert np.array_equal(base, same)


class TestCrashFailures:
    def test_success_decreases_with_hazard_events(self):
        world = place_treasure(10, "offaxis")
        rates = []
        for hazard in (0.0, 1e-3, 1e-2):
            scenario = ScenarioSpec(crash_hazard=hazard) if hazard else None
            times = simulate_find_times(
                NonUniformSearch(k=4), world, 4, 150, seed=8,
                horizon=1e5, scenario=scenario,
            )
            rates.append(np.isfinite(times).mean())
        assert rates[0] == 1.0
        assert rates[0] >= rates[1] >= rates[2]
        assert rates[2] < rates[0]

    def test_success_decreases_with_hazard_walkers(self):
        world = place_treasure(4, "offaxis")
        walker = RandomWalker()
        base = walker.find_times(world, 3, 80, seed=9, horizon=4000)
        crashed = walker.find_times(
            world, 3, 80, seed=9, horizon=4000,
            scenario=ScenarioSpec(crash_hazard=0.02),
        )
        assert np.isfinite(crashed).mean() < np.isfinite(base).mean()

    def test_batch_crash_matches_scalar_distributionally(self):
        # Same per-slot crash semantics in both excursion engines: success
        # rates over many trials agree within sampling noise.
        world = place_treasure(8, "offaxis")
        scenario = ScenarioSpec(crash_hazard=2e-3)
        scalar = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 300, seed=10,
            horizon=1e5, scenario=scenario,
        )
        batch = simulate_find_times_batch(
            NonUniformSearch(k=4), [world], 4, 300, seed=10,
            horizon=1e5, scenario=scenario,
        )[0]
        assert np.array_equal(scalar, batch)  # single world: bitwise twin

    def test_crash_sweeps_are_paired(self):
        # Lifetimes come from a spawned child stream, so two hazard
        # settings of the same seed share every excursion draw: in trials
        # where nobody crashes before finding, the times are *identical*.
        world = place_treasure(10, "offaxis")
        mild = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 100, seed=28, horizon=1e5,
            scenario=ScenarioSpec(crash_hazard=1e-9),
        )
        base = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 100, seed=28, horizon=1e5
        )
        # With mean lifetime 1e9 >> every find time, no crash ever bites.
        assert np.array_equal(mild, base)

    def test_certain_crash_never_finds_far_treasure(self):
        # hazard 1.0 = one-step lifetimes: nobody reaches distance 5.
        world = place_treasure(5, "offaxis")
        times = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 30, seed=11,
            horizon=1e5, scenario=ScenarioSpec(crash_hazard=1.0),
        )
        assert not np.isfinite(times).any()
        run = run_search(
            NonUniformSearch(k=4), world, 4, seed=11, horizon=3000,
            scenario=ScenarioSpec(crash_hazard=1.0),
        )
        assert not run.found

    def test_crashes_never_speed_up_search(self):
        world = place_treasure(10, "offaxis")
        base = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 120, seed=12, horizon=1e5
        )
        crashed = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 120, seed=12, horizon=1e5,
            scenario=ScenarioSpec(crash_hazard=1e-3),
        )
        capped = np.minimum(crashed, 1e5)
        assert capped.mean() >= np.minimum(base, 1e5).mean()


class TestHeterogeneousSpeeds:
    def test_speeds_keep_success_with_ample_horizon(self):
        world = place_treasure(10, "offaxis")
        times = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 80, seed=13,
            scenario=ScenarioSpec(speed_spread=3.0),
        )
        assert np.isfinite(times).all()

    def test_walker_single_fast_agent_scales_time_exactly(self):
        # k=1 with spread 0 but an explicit speed through the profile is
        # not expressible; instead check the walker wall-clock conversion
        # via start delays: a delayed walker's finds shift by the delay.
        world = place_treasure(4, "offaxis")
        delay = 500.0
        for walker in WALKERS:
            base = walker.find_times(world, 2, 40, seed=14, horizon=3500)
            delayed = walker.find_times(
                world, 2, 40, seed=14, horizon=4000,
                start_delays=np.full(2, delay),
            )
            finite = np.isfinite(base)
            assert np.array_equal(delayed[finite], base[finite] + delay)
            assert np.array_equal(np.isfinite(delayed), finite)

    def test_walker_slot_plan_speed_conversion(self):
        # The per-slot plan is where walker speed semantics live: a
        # fast slot fits *more* steps into the wall-clock horizon
        # (cap = horizon * speed) and its steps cost *less* wall time
        # (wall = delay + steps / speed).  Flipping either division
        # direction breaks both assertions.
        from repro.sim.walkers import _slot_plan

        scenario = ScenarioSpec(speed_spread=1.0, start_stagger=3.0)
        k, trials, horizon = 2, 2, 1000
        plan = _slot_plan(scenario, None, k, trials, horizon, make_rng(0))
        speeds = scenario.speeds(k)
        assert np.allclose(plan.speeds, np.tile(speeds, trials))
        assert np.allclose(plan.delays, np.tile([0.0, 3.0], trials))
        expected_caps = np.floor(
            (horizon - plan.delays) * plan.speeds + 1e-6
        )
        assert np.array_equal(plan.step_cap, expected_caps)
        assert plan.step_cap[1] > plan.step_cap[0]  # faster slot: more steps
        slots = np.arange(2 * 2)
        walls = plan.wall(slots, 100.0)
        assert np.allclose(walls, plan.delays + 100.0 / plan.speeds)
        assert walls[1] < walls[0] + 3.0  # fast slot reaches step 100 sooner

    @pytest.mark.parametrize("walker", WALKERS, ids=lambda w: w.name)
    def test_walker_speed_spread_end_to_end(self, walker):
        # Wall-clock find times under a speed spread: fractional times
        # appear (steps divided by non-unit speeds), nothing exceeds the
        # horizon, and success stays in the same regime as the baseline.
        world = place_treasure(3, "offaxis")
        horizon = 3000
        times = walker.find_times(
            world, 2, 60, seed=30, horizon=horizon,
            scenario=ScenarioSpec(speed_spread=2.0),
        )
        finite = times[np.isfinite(times)]
        assert finite.size > 0
        assert np.all(finite <= horizon)
        assert np.any(finite != np.round(finite))  # genuinely wall-clock


class TestLossyDetection:
    def test_zero_detection_never_finds(self):
        world = place_treasure(6, "offaxis")
        blind = ScenarioSpec(detection_prob=0.0)
        times = simulate_find_times(
            NonUniformSearch(k=3), world, 3, 30, seed=15,
            horizon=1e5, scenario=blind,
        )
        assert not np.isfinite(times).any()
        for walker in WALKERS:
            wt = walker.find_times(
                world, 3, 30, seed=15, horizon=3000, scenario=blind
            )
            assert not np.isfinite(wt).any()
        run = run_search(
            NonUniformSearch(k=3), world, 3, seed=15, horizon=2000,
            scenario=blind,
        )
        assert not run.found

    def test_batch_detection_matches_scalar_bitwise_single_world(self):
        # Detection coins are drawn per draw (shared across worlds), so
        # the single-world batch run keeps the documented bitwise-twin
        # contract even under lossy detection.
        world = place_treasure(8, "offaxis")
        scenario = ScenarioSpec(detection_prob=0.5, crash_hazard=1e-4)
        scalar = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 120, seed=29,
            horizon=1e5, scenario=scenario,
        )
        batch = simulate_find_times_batch(
            NonUniformSearch(k=4), [world], 4, 120, seed=29,
            horizon=1e5, scenario=scenario,
        )[0]
        assert np.array_equal(scalar, batch)

    def test_lossy_detection_slows_search(self):
        world = place_treasure(10, "offaxis")
        base = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 150, seed=16, horizon=1e6
        )
        lossy = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 150, seed=16, horizon=1e6,
            scenario=ScenarioSpec(detection_prob=0.25),
        )
        assert np.minimum(lossy, 1e6).mean() > base.mean()

    def test_step_engine_detection_uses_separate_stream(self):
        # The trajectory must be identical with and without detection
        # coins: only whether a visit is noticed changes.  Walking the
        # full horizon with visit recording pins the whole trajectory.
        world = place_treasure(3, "offaxis")
        full = run_agent(
            RandomWalkSearch(), world, make_rng(0), 2000,
            record_visits=True, stop_at_find=False,
        )
        lossy = run_agent(
            RandomWalkSearch(), world, make_rng(0), 2000,
            record_visits=True, stop_at_find=False,
            detection_prob=0.5, detect_rng=make_rng(99),
        )
        assert lossy.visited == full.visited  # bitwise-identical walk
        assert lossy.steps == full.steps
        assert full.find_time is not None  # seed 0 visits the treasure
        if lossy.find_time is not None:
            assert lossy.find_time >= full.find_time

    def test_run_agent_requires_detect_rng(self):
        world = place_treasure(3, "offaxis")
        with pytest.raises(ValueError):
            run_agent(
                RandomWalkSearch(), world, make_rng(0), 10, detection_prob=0.5
            )


class TestStaggeredStarts:
    def test_stagger_equals_explicit_delays_events(self):
        world = place_treasure(10, "offaxis")
        stagger = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 60, seed=18,
            scenario=ScenarioSpec(start_stagger=25.0),
        )
        explicit = simulate_find_times(
            NonUniformSearch(k=4), world, 4, 60, seed=18,
            start_delays=np.arange(4) * 25.0,
        )
        assert np.array_equal(stagger, explicit)

    def test_stagger_equals_explicit_delays_batch(self):
        worlds = [place_treasure(d, "offaxis") for d in (8, 12)]
        stagger = simulate_find_times_batch(
            NonUniformSearch(k=3), worlds, 3, 50, seed=19,
            scenario=ScenarioSpec(start_stagger=10.0),
        )
        explicit = simulate_find_times_batch(
            NonUniformSearch(k=3), worlds, 3, 50, seed=19,
            start_delays=np.arange(3) * 10.0,
        )
        assert np.array_equal(stagger, explicit)

    def test_step_engine_wall_clock_shift(self):
        world = place_treasure(4, "offaxis")
        base = run_search(NonUniformSearch(k=1), world, 1, seed=20, horizon=4000)
        delayed = run_search(
            NonUniformSearch(k=1), world, 1, seed=20, horizon=4100,
            start_delays=[100.0],
        )
        assert base.found and delayed.found
        assert delayed.result.time == base.result.time + 100.0

    def test_walker_rejects_negative_delays(self):
        world = place_treasure(4, "offaxis")
        with pytest.raises(ValueError):
            RandomWalker().find_times(
                world, 2, 5, seed=0, horizon=100,
                start_delays=np.array([0.0, -1.0]),
            )
