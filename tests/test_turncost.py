"""Tests for turn-cost accounting (repro.analysis.turncost)."""

import itertools

import pytest

from repro.analysis.turncost import (
    count_turns,
    manhattan_leg_turns,
    phase_turns_upper_bound,
    spiral_turns,
    turn_adjusted_phase_cost,
)
from repro.core.schedule import PhaseSpec
from repro.core.spiral import spiral_cells
from repro.core.walks import manhattan_path


class TestCountTurns:
    def test_straight_line_has_no_turns(self):
        path = [(i, 0) for i in range(1, 6)]
        assert count_turns(path) == 0

    def test_l_shape_has_one_turn(self):
        path = list(manhattan_path((0, 0), (3, 2)))
        assert count_turns(path) == 1

    def test_staircase(self):
        path = [(1, 0), (1, 1), (2, 1), (2, 2)]
        assert count_turns(path) == 3

    def test_rejects_non_unit_steps(self):
        with pytest.raises(ValueError):
            count_turns([(2, 0)])


class TestSpiralTurns:
    @pytest.mark.parametrize("t", [0, 1, 2, 3, 4, 5, 6, 7, 10, 25, 100, 477])
    def test_matches_generated_path(self, t):
        cells = list(itertools.islice(spiral_cells(), t + 1))
        assert spiral_turns(t) == count_turns(cells[1:], start=(0, 0))

    def test_turns_grow_as_sqrt(self):
        # turns(t) ~ 2 sqrt(t): check the ratio at a large t.
        t = 10**6
        assert spiral_turns(t) == pytest.approx(2 * t**0.5, rel=0.01)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spiral_turns(-1)


class TestManhattanTurns:
    def test_axis_moves_are_straight(self):
        assert manhattan_leg_turns(5, 0) == 0
        assert manhattan_leg_turns(0, -3) == 0

    def test_diagonal_targets_need_one_turn(self):
        assert manhattan_leg_turns(3, 2) == 1
        path = list(manhattan_path((0, 0), (3, 2)))
        assert count_turns(path) == manhattan_leg_turns(3, 2)


class TestPhaseCost:
    def test_turns_are_sqrt_of_budget(self):
        spec = PhaseSpec(radius=8, budget=10_000)
        assert phase_turns_upper_bound(spec) < 3 * 10_000**0.5

    def test_adjusted_cost_converges_to_plain(self):
        """For growing budgets, turn cost becomes a vanishing fraction."""
        overheads = []
        for budget in (100, 10_000, 1_000_000):
            spec = PhaseSpec(radius=4, budget=budget)
            plain = turn_adjusted_phase_cost(spec, turn_cost=0.0)
            adjusted = turn_adjusted_phase_cost(spec, turn_cost=5.0)
            overheads.append(adjusted / plain - 1.0)
        assert overheads[0] > overheads[1] > overheads[2]
        assert overheads[2] < 0.02

    def test_rejects_negative_turn_cost(self):
        with pytest.raises(ValueError):
            turn_adjusted_phase_cost(PhaseSpec(1, 1), -1.0)
