"""Tests for the sector-sweep comparator (repro.algorithms.sector)."""

import math

import numpy as np
import pytest

from repro.algorithms.sector import (
    SectorSearch,
    expected_covering_agents,
    miss_probability,
    ring_fraction,
    sector_find_times,
    sector_round_duration,
)
from repro.core.geometry import ring_cell_from_index
from repro.sim.world import World, place_treasure


class TestRingFraction:
    def test_cardinal_directions(self):
        assert ring_fraction(5, 0) == 0.0
        assert ring_fraction(0, 5) == 0.25
        assert ring_fraction(-5, 0) == 0.5
        assert ring_fraction(0, -5) == 0.75

    @pytest.mark.parametrize("r", [1, 2, 5, 9])
    def test_inverse_of_ring_parameterisation(self, r):
        for m in range(4 * r):
            x, y = ring_cell_from_index(r, m)
            assert ring_fraction(x, y) == pytest.approx(m / (4 * r))

    def test_monotone_within_ring(self):
        r = 7
        fractions = [
            ring_fraction(*ring_cell_from_index(r, m)) for m in range(4 * r)
        ]
        assert fractions == sorted(fractions)

    def test_rejects_origin(self):
        with pytest.raises(ValueError):
            ring_fraction(0, 0)


class TestDurations:
    def test_round_duration_scales_with_width(self):
        narrow = sector_round_duration(6, 0.05)
        wide = sector_round_duration(6, 0.5)
        assert wide > 3 * narrow

    def test_round_duration_doubles_ish(self):
        d5 = sector_round_duration(5, 0.25)
        d6 = sector_round_duration(6, 0.25)
        assert 2.5 < d6 / d5 < 4.5  # area of the swept wedge quadruples

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sector_round_duration(0, 0.5)
        with pytest.raises(ValueError):
            sector_round_duration(3, 1.5)


class TestSectorFindTimes:
    def test_wide_wedge_finds_quickly(self):
        world = place_treasure(16, "offaxis")
        times = sector_find_times(SectorSearch(1.0), world, 1, 50, seed=0)
        assert np.all(np.isfinite(times))
        # Full-circle sweep: found in the first round reaching distance 16.
        assert np.all(times < 5000)

    def test_find_time_at_least_distance(self):
        world = place_treasure(8, "offaxis")
        times = sector_find_times(SectorSearch(0.25), world, 4, 100, seed=1)
        finite = times[np.isfinite(times)]
        assert np.all(finite >= 8)

    def test_narrow_wedges_pay_coverage_gaps(self):
        """With k*w = 2 expected coverage, e^-2 of rounds miss entirely —
        narrow wedges must be slower in expectation than one full sweep."""
        world = place_treasure(32, "offaxis")
        full = sector_find_times(SectorSearch(1.0), world, 1, 200, seed=2)
        narrow = sector_find_times(SectorSearch(1 / 16), world, 16, 200, seed=3)
        assert narrow.mean() > full.mean() / 4  # no k-fold speed-up

    def test_more_agents_help(self):
        world = place_treasure(32, "offaxis")
        few = sector_find_times(SectorSearch(0.1), world, 2, 200, seed=4)
        many = sector_find_times(SectorSearch(0.1), world, 32, 200, seed=5)
        assert many.mean() < few.mean()

    def test_reproducible(self):
        world = World((5, 3))
        a = sector_find_times(SectorSearch(0.2), world, 3, 40, seed=6)
        b = sector_find_times(SectorSearch(0.2), world, 3, 40, seed=6)
        assert np.array_equal(a, b)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SectorSearch(0.0)
        with pytest.raises(ValueError):
            sector_find_times(SectorSearch(0.5), World((2, 1)), 0, 5)


class TestOverlapAnalysis:
    def test_expected_coverage(self):
        assert expected_covering_agents(16, 0.125) == pytest.approx(2.0)

    def test_miss_probability_matches_poisson_limit(self):
        # (1 - w)^k -> e^{-kw}: the gap never closes by adding agents at
        # fixed k*w.
        for kw in (1.0, 2.0, 4.0):
            k = 1000
            w = kw / k
            assert miss_probability(k, w) == pytest.approx(math.exp(-kw), rel=1e-2)

    def test_monte_carlo_agrees_with_miss_probability(self):
        rng = np.random.default_rng(7)
        k, w = 8, 0.125
        u0 = rng.random((20_000, k))
        covered = ((0.4 - u0) % 1.0) < w
        empirical = float(np.mean(~covered.any(axis=1)))
        assert empirical == pytest.approx(miss_probability(k, w), abs=0.01)
