"""Tests for ``repro.obs``: tracing, metrics, profiling (DESIGN.md §12).

The load-bearing guarantees:

* every event the instrumented sweep stack emits validates against the
  schema registry — no site can invent a shape downstream tooling has
  never seen;
* tracing is determinism-neutral: traced and untraced runs are bitwise
  identical on all four executor backends (the property test);
* the disabled path is one attribute read — the bus emits nothing and
  touches no sink when no trace is attached;
* a raising progress callback cannot poison a shared executor mid-sweep
  (the ``_ProgressGuard`` regression);
* the JSONL round-trip, the metrics footer, the Chrome exporter, and
  the ``trace report`` aggregation all reconstruct what actually ran.
"""

import json
import os
import warnings

import numpy as np
import pytest

from repro.obs import (
    BUS,
    EVENT_SCHEMAS,
    SCHEMA_VERSION,
    TRACE_ENV,
    Event,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    build_report,
    read_trace,
    to_chrome,
    trace_metrics,
    tracing,
    validate_event,
)
from repro.obs import bus as bus_module
from repro.stats import BudgetPolicy
from repro.sweep import LoopbackWorker, RemoteExecutor, SweepSpec, run_sweep
from repro.sweep.executor import VirtualExecutor


def small_spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16),
        ks=(1, 4),
        trials=20,
        seed=42,
    )
    base.update(overrides)
    return SweepSpec(**base)


def adaptive(rel_ci=1e-9, min_trials=32, max_trials=128, **overrides):
    return small_spec(
        budget=BudgetPolicy.target_rel_ci(
            rel_ci, min_trials=min_trials, max_trials=max_trials
        ),
        **overrides,
    )


def assert_sweeps_equal(a, b):
    assert len(a.cells) == len(b.cells)
    for x, y in zip(a.cells, b.cells):
        assert (x.distance, x.k) == (y.distance, y.k)
        assert np.array_equal(x.times, y.times), (x.distance, x.k)


@pytest.fixture(autouse=True)
def clean_bus():
    """Leave the process-singleton bus exactly as this test found it."""
    yield
    for sink in BUS.sinks:
        BUS.detach(sink, close=True)
    BUS.metrics.clear()
    bus_module._ENV_SINKS.clear()


def record_sweep(spec, **kwargs):
    """Run a sweep with a MemorySink attached; returns (result, records)."""
    sink = MemorySink()
    with tracing(sink):
        result = run_sweep(spec, **kwargs)
    return result, sink.records


def names_of(records):
    counts = {}
    for record in records:
        counts[record["name"]] = counts.get(record["name"], 0) + 1
    return counts


def assert_all_valid(records):
    problems = [p for r in records for p in validate_event(r)]
    assert problems == [], problems[:10]


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.incr("a", 2)
        registry.observe("lat", 1.0)
        registry.observe("lat", 3.0)
        assert registry.count("a") == 3
        assert registry.count("missing") == 0
        assert registry.total("lat") == 4.0
        assert registry.total("missing") == 0.0
        assert registry.names() == ["a", "lat"]
        snap = registry.snapshot()
        assert snap["counters"] == {"a": 3}
        hist = snap["histograms"]["lat"]
        assert hist["count"] == 2
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
        assert hist["mean"] == 2.0
        registry.clear()
        assert registry.snapshot() == {"counters": {}, "histograms": {}}

    def test_empty_histogram_snapshot_has_no_infinities(self):
        registry = MetricsRegistry()
        registry.observe("x", 5.0)
        registry.clear()
        # A snapshot after clear must stay JSON-safe.
        assert json.dumps(registry.snapshot())


# ----------------------------------------------------------------------
# Event schema
# ----------------------------------------------------------------------


class TestEventSchema:
    def test_registry_types_are_known(self):
        from repro.obs.events import EVENT_TYPES

        for name, (type_, keys) in EVENT_SCHEMAS.items():
            assert type_ in EVENT_TYPES, name
            assert all(isinstance(key, str) for key in keys), name

    def test_round_trip_record_validates(self):
        event = Event(
            name="cache.hit", type="counter", ts=1.0, seq=1, pid=7,
            data={"kind": "sweep", "algorithm": "nonuniform"},
        )
        assert validate_event(event.to_record()) == []

    def test_non_dict_record(self):
        assert validate_event(["nope"]) != []

    def test_unknown_name(self):
        record = Event(
            name="no.such.event", type="counter", ts=1.0, seq=1, pid=7
        ).to_record()
        assert any("unknown event name" in p for p in validate_event(record))

    def test_wrong_type_and_schema(self):
        record = Event(
            name="cache.hit", type="gauge", ts=1.0, seq=1, pid=7, schema=99
        ).to_record()
        problems = validate_event(record)
        assert any("!= 'counter'" in p for p in problems)
        assert any(f"!= {SCHEMA_VERSION}" in p for p in problems)

    def test_unknown_data_key_and_non_scalar_value(self):
        record = Event(
            name="cache.hit", type="counter", ts=1.0, seq=1, pid=7,
            data={"bogus": 1, "kind": {"nested": True}},
        ).to_record()
        problems = validate_event(record)
        assert any("unknown data key 'bogus'" in p for p in problems)
        assert any("not JSON-scalar" in p for p in problems)

    def test_flat_lists_are_scalar_enough(self):
        record = Event(
            name="cell.block.start", type="span.start", ts=1.0, seq=1,
            pid=7, data={"ticket": 3, "kind": "chunk", "distances": [8, 16]},
        ).to_record()
        assert validate_event(record) == []

    def test_bad_envelope_fields(self):
        record = Event(
            name="cache.hit", type="counter", ts=1.0, seq=1, pid=7
        ).to_record()
        record["ts"] = "yesterday"
        record["seq"] = None
        problems = validate_event(record)
        assert any("ts is not a number" in p for p in problems)
        assert any("seq is not an integer" in p for p in problems)


# ----------------------------------------------------------------------
# Bus and sinks
# ----------------------------------------------------------------------


class TestBus:
    def test_disabled_bus_is_silent(self):
        assert not BUS.enabled
        BUS.counter("cache.miss", kind="sweep")  # must be a no-op
        assert BUS.metrics.count("cache.miss") == 0

    def test_attach_enables_detach_disables(self):
        sink = MemorySink()
        BUS.attach(sink)
        assert BUS.enabled
        BUS.counter("cache.miss", kind="sweep")
        BUS.detach(sink)
        assert not BUS.enabled
        assert sink.closed
        assert names_of(sink.records) == {"cache.miss": 1}
        assert BUS.metrics.count("cache.miss") == 1

    def test_sequence_numbers_are_monotonic(self):
        sink = MemorySink()
        with tracing(sink):
            BUS.counter("cache.miss", kind="sweep")
            BUS.counter("cache.miss", kind="blocks")
        seqs = [r["seq"] for r in sink.records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_gauge_and_timing_feed_histograms(self):
        sink = MemorySink()
        with tracing(sink):
            BUS.gauge("executor.queue_depth", 3.0, backend="serial")
            started = BUS.span_start("sweep", algorithm="nonuniform")
            BUS.span_end("sweep", started, algorithm="nonuniform")
        assert BUS.metrics.total("executor.queue_depth") == 3.0
        assert BUS.metrics.total("sweep.end.dur_s") > 0.0

    def test_tracing_scope_appends_metrics_footer(self):
        sink = MemorySink()
        with tracing(sink):
            BUS.counter("cache.miss", kind="sweep")
        footer = trace_metrics(sink.records)
        assert footer is not None
        assert footer["counters"]["cache.miss"] == 1
        assert sink.records[-1]["name"] == "trace.metrics"
        assert validate_event(sink.records[-1]) == []

    def test_two_sinks_both_receive(self):
        a, b = MemorySink(), MemorySink()
        BUS.attach(a)
        BUS.attach(b)
        BUS.counter("cache.miss", kind="sweep")
        BUS.detach(a)
        assert BUS.enabled  # b still attached
        BUS.detach(b)
        assert len(a.records) == 1
        assert len(b.records) == 1


class TestSinks:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with tracing(path):
            BUS.counter("cache.miss", kind="sweep")
        records = read_trace(path)
        assert names_of(records) == {"cache.miss": 1, "trace.metrics": 1}
        assert_all_valid(records)

    def test_jsonl_is_lazy(self, tmp_path):
        path = str(tmp_path / "never.jsonl")
        sink = JsonlSink(path)
        sink.close()
        assert not os.path.exists(path)

    def test_io_error_disables_sink_not_sweep(self, tmp_path):
        sink = JsonlSink(str(tmp_path))  # a directory: open() fails
        with tracing(sink):
            BUS.counter("cache.miss", kind="sweep")  # must not raise
        assert sink._dead

    def test_read_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(str(path))


# ----------------------------------------------------------------------
# Instrumented sweep stack
# ----------------------------------------------------------------------


class TestSweepInstrumentation:
    def test_fixed_sweep_event_stream(self):
        result, records = record_sweep(small_spec(), cache=False)
        assert_all_valid(records)
        counts = names_of(records)
        assert counts["sweep.start"] == 1
        assert counts["sweep.end"] == 1
        assert counts["cell.finish"] == len(result.cells) == 4
        assert counts["cell.block.start"] == counts["cell.block.end"]
        assert counts["executor.submit"] == counts["executor.complete"]
        assert counts["worker.utilization"] == 1
        ends = [r for r in records if r["name"] == "sweep.end"]
        assert ends[0]["data"]["total_trials"] == result.total_trials
        assert ends[0]["data"]["dur_s"] > 0.0

    def test_cache_hit_and_miss_events(self, tmp_path):
        spec = small_spec()
        _, first = record_sweep(spec, cache=True, cache_dir=str(tmp_path))
        result, second = record_sweep(
            spec, cache=True, cache_dir=str(tmp_path)
        )
        assert result.from_cache
        assert names_of(first)["cache.miss"] == 1
        counts = names_of(second)
        assert counts["cache.hit"] == 1
        assert "executor.submit" not in counts  # nothing ran
        # Cache-served cells still report finishes, flagged as cached.
        finishes = [r for r in second if r["name"] == "cell.finish"]
        assert all(r["data"]["source"] == "cache" for r in finishes)

    def test_adaptive_sweep_stop_decisions(self, tmp_path):
        spec = adaptive()
        result, records = record_sweep(
            spec, cache=True, cache_dir=str(tmp_path)
        )
        assert_all_valid(records)
        counts = names_of(records)
        stops = [r for r in records if r["name"] == "cell.stop"]
        assert len(stops) == len(result.cells)
        assert all(r["data"]["reason"] == "satisfied" for r in stops)
        assert counts["cache.miss"] == 1
        assert counts["cache.append"] == 1
        assert counts["cache.lock_wait"] >= 1
        # Block spans carry the speculation/steal flags.
        starts = [r for r in records if r["name"] == "cell.block.start"]
        assert all(
            isinstance(r["data"]["speculative"], bool) for r in starts
        )
        # Re-running from the block store stops every cell as cached.
        _, again = record_sweep(spec, cache=True, cache_dir=str(tmp_path))
        stops = [r for r in again if r["name"] == "cell.stop"]
        assert stops and all(
            r["data"]["reason"] == "cached" for r in stops
        )

    def test_env_var_tracing(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(TRACE_ENV, path)
        run_sweep(small_spec(), cache=False)
        run_sweep(small_spec(seed=43), cache=False)
        records = read_trace(path)
        assert_all_valid(records)
        # One process-lifetime sink: both sweeps, no footer.
        assert names_of(records)["sweep.end"] == 2
        assert trace_metrics(records) is None

    def test_untraced_sweep_emits_nothing(self):
        sink = MemorySink()
        run_sweep(small_spec(), cache=False)  # bus disabled throughout
        assert sink.records == []
        assert not BUS.enabled


class TestProgressGuard:
    def test_raising_callback_cannot_poison_the_sweep(self):
        spec = adaptive()
        baseline = run_sweep(spec, cache=False)

        calls = []

        def bad_progress(event):
            calls.append(event)
            raise RuntimeError("observer crashed")

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_sweep(spec, cache=False, progress=bad_progress)
        assert_sweeps_equal(baseline, result)
        assert len(calls) == len(result.cells)
        relevant = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(relevant) == 1
        message = str(relevant[0].message)
        assert "progress callback raised" in message
        assert "observer crashed" in message

    def test_healthy_callback_warns_nothing(self):
        events = []
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_sweep(small_spec(), cache=False, progress=events.append)
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(events) == 4


# ----------------------------------------------------------------------
# Determinism: traced == untraced, bitwise, on all four backends
# ----------------------------------------------------------------------


class TestTracingParity:
    @pytest.mark.parametrize("make_spec", [small_spec, adaptive])
    def test_traced_equals_untraced_serial(self, make_spec):
        spec = make_spec()
        baseline = run_sweep(spec, cache=False)
        traced, records = record_sweep(spec, cache=False)
        assert_sweeps_equal(baseline, traced)
        assert_all_valid(records)

    @pytest.mark.parametrize("make_spec", [small_spec, adaptive])
    def test_traced_equals_untraced_process(self, make_spec):
        spec = make_spec()
        baseline = run_sweep(spec, cache=False)
        traced, records = record_sweep(
            spec, cache=False, workers=2, backend="process"
        )
        assert_sweeps_equal(baseline, traced)
        assert_all_valid(records)

    @pytest.mark.parametrize("make_spec", [small_spec, adaptive])
    def test_traced_equals_untraced_virtual(self, make_spec):
        spec = make_spec()
        baseline = run_sweep(spec, cache=False)
        with VirtualExecutor(
            workers=4, cost_fn=lambda fn, payload, result: 1.0
        ) as executor:
            traced, records = record_sweep(
                spec, cache=False, executor=executor
            )
        assert_sweeps_equal(baseline, traced)
        assert_all_valid(records)

    def test_traced_equals_untraced_remote(self):
        spec = adaptive()
        baseline = run_sweep(spec, cache=False)
        worker = LoopbackWorker()
        try:
            with RemoteExecutor([worker.address]) as executor:
                traced, records = record_sweep(
                    spec, cache=False, executor=executor
                )
        finally:
            worker.stop()
        assert_sweeps_equal(baseline, traced)
        assert_all_valid(records)
        counts = names_of(records)
        assert counts["remote.dispatch"] == counts["executor.complete"]
        # The remote path ships worker-measured execution time home.
        completes = [
            r for r in records if r["name"] == "executor.complete"
        ]
        assert any(
            isinstance(r["data"].get("exec_s"), float) for r in completes
        )


# ----------------------------------------------------------------------
# Chrome export and trace report
# ----------------------------------------------------------------------


class TestChromeExport:
    def test_empty_trace(self):
        assert to_chrome([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_sweep_spans_counters_and_lanes(self):
        _, records = record_sweep(small_spec(), cache=False)
        document = to_chrome(records)
        events = document["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"X", "C"}
        sweep_rows = [e for e in events if e.get("cat") == "sweep"]
        assert len(sweep_rows) == 1
        assert sweep_rows[0]["tid"] == 0
        blocks = [e for e in events if e.get("cat") == "chunk"]
        assert blocks and all(e["tid"] >= 1 for e in blocks)
        assert all(e["dur"] >= 0.0 for e in blocks)
        assert json.dumps(document)  # must be serialisable as-is

    def test_unmatched_span_starts_are_dropped(self):
        _, records = record_sweep(small_spec(), cache=False)
        truncated = [
            r for r in records if r["name"] != "cell.block.end"
        ]
        document = to_chrome(truncated)
        assert all(
            e.get("cat") != "chunk" for e in document["traceEvents"]
        )


class TestTraceReport:
    def test_report_matches_the_run(self):
        result, records = record_sweep(small_spec(), cache=False)
        report = build_report(records)
        assert report.events == len(records)
        assert report.sweeps == 1
        assert report.backend == "serial"
        assert report.wall_s > 0.0
        assert 0.0 < report.utilization <= 1.5  # measurement jitter slack
        assert report.submitted == report.completed
        assert report.cells  # per-cell rows exist
        total_spans = sum(cell.spans for cell in report.cells)
        assert total_spans == report.completed
        rendered = report.render(top=3)
        assert "worker utilization" in rendered
        assert "cache:" in rendered
        assert "executor:" in rendered

    def test_adaptive_report_counts_cache_and_steals(self, tmp_path):
        spec = adaptive()
        record_sweep(spec, cache=True, cache_dir=str(tmp_path))
        _, records = record_sweep(
            spec, cache=True, cache_dir=str(tmp_path)
        )
        report = build_report(records)
        assert report.cache_hits == 1
        assert report.cache_hit_rate == 1.0

    def test_report_survives_an_empty_trace(self):
        report = build_report([])
        assert report.events == 0
        assert "no block spans recorded" in report.render()

    def test_multi_sweep_utilization_is_time_weighted(self):
        # Two utilization gauges: a busy sweep then an idle one.  The
        # aggregate must not collapse to the trailing near-idle gauge.
        def gauge(seq, busy, wall):
            return Event(
                name="worker.utilization", type="gauge", ts=float(seq),
                seq=seq, pid=1,
                data={
                    "value": busy / wall, "busy_s": busy, "wall_s": wall,
                    "workers": 1, "backend": "serial",
                },
            ).to_record()

        report = build_report([gauge(1, 0.9, 1.0), gauge(2, 0.0, 1.0)])
        assert report.utilization == pytest.approx(0.45)
