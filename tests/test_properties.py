"""Property-based tests: cross-module invariants under hypothesis.

These complement the per-module suites by checking relations that hold
*between* components for arbitrary inputs: spiral/geometry consistency,
schedule monotonicity, engine-level physical constraints.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import HarmonicSearch, NonUniformSearch, UniformSearch
from repro.core.geometry import ball_size, l1_norm, ring_size
from repro.core.schedule import (
    nonuniform_stage_phases,
    phase_max_duration,
    uniform_phase,
)
from repro.core.spiral import (
    coverage_radius,
    spiral_hit_time,
    time_to_cover_radius,
)
from repro.sim.events import excursion_find_time, simulate_find_times
from repro.sim.rng import derive_rng
from repro.sim.world import World


class TestSpiralGeometryConsistency:
    @given(st.integers(0, 500))
    @settings(max_examples=100)
    def test_cover_time_vs_ball_size(self, d):
        """Covering B(d) takes at least |B(d)| - 1 steps (one new cell/step)."""
        assert time_to_cover_radius(d) >= ball_size(d) - 1

    @given(st.integers(0, 10**9))
    @settings(max_examples=200)
    def test_coverage_radius_monotone(self, t):
        assert coverage_radius(t + 1) >= coverage_radius(t)

    @given(st.integers(1, 300))
    @settings(max_examples=60)
    def test_every_ring_cell_hit_before_cover_time(self, d):
        cover = time_to_cover_radius(d)
        # Sample a few ring cells; all must be hit by the cover time.
        for m in range(0, 4 * d, max(1, d)):
            q, i = divmod(m, d)
            cell = [(d - i, i), (-i, d - i), (-(d - i), -i), (i, -(d - i))][q]
            assert spiral_hit_time(*cell) <= cover

    @given(st.integers(-200, 200), st.integers(-200, 200))
    @settings(max_examples=100)
    def test_hit_time_unique_per_cell(self, x, y):
        """Distinct cells never share a hit time (the spiral is a bijection)."""
        t = spiral_hit_time(x, y)
        neighbours = [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
        assert all(spiral_hit_time(*n) != t for n in neighbours)


class TestScheduleProperties:
    @given(st.integers(1, 12), st.floats(0.5, 1024.0))
    @settings(max_examples=80)
    def test_nonuniform_phase_radii_double(self, stage, k):
        phases = nonuniform_stage_phases(stage, k)
        for a, b in zip(phases, phases[1:]):
            assert b.radius == 2 * a.radius

    @given(st.integers(0, 16), st.floats(0.05, 2.0))
    @settings(max_examples=80)
    def test_uniform_phase_duration_positive_and_bounded(self, i, eps):
        for j in range(i + 1):
            spec = uniform_phase(i, j, eps)
            duration = phase_max_duration(spec)
            assert duration >= spec.budget
            # Crude absolute bound: radius travel + budget + spiral-exit leg.
            assert duration <= 2 * spec.radius + spec.budget + 4 * (
                int(math.isqrt(spec.budget)) + 2
            )

    @given(st.floats(0.05, 2.0), st.integers(1, 14))
    @settings(max_examples=60)
    def test_uniform_budget_decreasing_in_j(self, eps, i):
        budgets = [uniform_phase(i, j, eps).budget for j in range(i + 1)]
        assert all(a >= b for a, b in zip(budgets, budgets[1:]))


class TestEngineInvariants:
    @given(
        st.integers(-12, 12),
        st.integers(-12, 12),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_find_time_at_least_distance(self, x, y, seed):
        if (x, y) == (0, 0):
            return
        world = World((x, y))
        t = excursion_find_time(NonUniformSearch(k=2), world, derive_rng(seed, 0))
        assert t >= l1_norm(x, y)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_vectorised_min_dominated_by_singletons(self, seed):
        """The k-agent find time is the min of independent agents: adding
        agents can only help (stochastically).  Check means over paired
        samples at matched seeds."""
        world = World((5, -3))
        t_small = simulate_find_times(UniformSearch(0.5), world, 1, 40, seed)
        t_large = simulate_find_times(UniformSearch(0.5), world, 8, 40, seed)
        assert t_large.mean() <= t_small.mean() * 1.5 + 50

    @given(st.floats(0.1, 0.8), st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_harmonic_times_distance_bound(self, delta, seed):
        world = World((4, 3))
        times = simulate_find_times(HarmonicSearch(delta), world, 16, 30, seed)
        finite = times[np.isfinite(times)]
        assert np.all(finite >= 7)


class TestGeometrySizes:
    @given(st.integers(0, 10**6))
    @settings(max_examples=100)
    def test_ball_size_recurrence(self, r):
        assert ball_size(r + 1) == ball_size(r) + ring_size(r + 1)
