"""Tests for the batched multi-world engine (simulate_find_times_batch)."""

import numpy as np
import pytest

from repro.algorithms import (
    HarmonicSearch,
    NonUniformSearch,
    RestartingHarmonicSearch,
    UniformSearch,
)
from repro.sim.events import simulate_find_times, simulate_find_times_batch
from repro.sim.world import World, place_treasure


class TestShapes:
    def test_result_shape_and_dtype(self):
        worlds = [place_treasure(d, "offaxis") for d in (8, 16, 32)]
        times = simulate_find_times_batch(NonUniformSearch(k=4), worlds, 4, 25, seed=0)
        assert times.shape == (3, 25)
        assert times.dtype == np.float64

    def test_accepts_world_objects_pairs_and_arrays(self):
        as_worlds = [World((5, 0)), World((0, -9))]
        as_pairs = [(5, 0), (0, -9)]
        as_array = np.array([[5, 0], [0, -9]])
        reference = simulate_find_times_batch(
            NonUniformSearch(k=2), as_worlds, 2, 20, seed=1
        )
        for worlds in (as_pairs, as_array):
            times = simulate_find_times_batch(
                NonUniformSearch(k=2), worlds, 2, 20, seed=1
            )
            assert np.array_equal(times, reference)

    def test_rows_follow_input_order(self):
        near, far = place_treasure(8, "offaxis"), place_treasure(64, "offaxis")
        times = simulate_find_times_batch(
            NonUniformSearch(k=2), [far, near], 2, 80, seed=2
        )
        assert times[1].mean() < times[0].mean()

    def test_duplicate_worlds_get_identical_rows(self):
        """Shared draws mean duplicated worlds resolve identically."""
        world = place_treasure(16, "offaxis")
        times = simulate_find_times_batch(
            NonUniformSearch(k=2), [world, world], 2, 40, seed=3
        )
        assert np.array_equal(times[0], times[1])


class TestScalarEquivalence:
    @pytest.mark.parametrize(
        "algorithm,k",
        [
            (NonUniformSearch(k=4), 4),
            (UniformSearch(0.5), 4),
            (HarmonicSearch(0.5), 8),
            (RestartingHarmonicSearch(0.5), 4),
        ],
        ids=["nonuniform", "uniform", "harmonic", "restarting"],
    )
    def test_single_world_bitwise_equals_scalar_engine(self, algorithm, k):
        """With one world the batch engine replays the scalar engine exactly:
        same seed, same draws, same find times, bit for bit."""
        world = place_treasure(32, "offaxis")
        scalar = simulate_find_times(
            algorithm, world, k, 60, seed=7, max_phases=200_000
        )
        batch = simulate_find_times_batch(
            algorithm, [world], k, 60, seed=7, max_phases=200_000
        )
        assert np.array_equal(scalar, batch[0])

    def test_single_world_bitwise_equality_with_horizon(self):
        world = place_treasure(24, "offaxis")
        scalar = simulate_find_times(
            NonUniformSearch(k=3), world, 3, 50, seed=11, horizon=5_000
        )
        batch = simulate_find_times_batch(
            NonUniformSearch(k=3), [world], 3, 50, seed=11, horizon=5_000
        )
        assert np.array_equal(scalar, batch[0])

    def test_multi_world_rows_match_scalar_distribution(self):
        """Every row of a batch is distributed as a scalar run of its world."""
        distances = (12, 24, 48)
        worlds = [place_treasure(d, "offaxis") for d in distances]
        batch = simulate_find_times_batch(
            NonUniformSearch(k=4), worlds, 4, 600, seed=13
        )
        for row, world in zip(batch, worlds):
            scalar = simulate_find_times(
                NonUniformSearch(k=4), world, 4, 600, seed=17
            )
            assert abs(row.mean() - scalar.mean()) / scalar.mean() < 0.2
            assert abs(np.median(row) - np.median(scalar)) / np.median(scalar) < 0.25

    def test_rows_at_least_distance(self):
        worlds = [place_treasure(d, "corner") for d in (8, 16, 32)]
        times = simulate_find_times_batch(UniformSearch(0.5), worlds, 4, 50, seed=5)
        for row, d in zip(times, (8, 16, 32)):
            finite = row[np.isfinite(row)]
            assert np.all(finite >= d)


class TestHorizonAndDelays:
    def test_horizon_truncates_to_inf(self):
        worlds = [place_treasure(d, "corner") for d in (40, 50)]
        times = simulate_find_times_batch(
            NonUniformSearch(k=1), worlds, 1, 20, seed=6, horizon=45
        )
        assert not np.any(np.isfinite(times))

    def test_find_at_exact_horizon_is_kept(self):
        # A treasure on the +x axis is crossed at exactly t=2 by outbound
        # legs (see TestTravelDetection in test_events.py); a horizon of 2
        # must keep those finds.
        times = simulate_find_times_batch(
            NonUniformSearch(k=1), [World((2, 0))], 1, 200, seed=8, horizon=2.0
        )
        finite = times[np.isfinite(times)]
        assert finite.size > 0
        assert np.all(finite == 2.0)

    def test_start_delays_shift_single_agent_times_exactly(self):
        worlds = [place_treasure(10, "offaxis"), place_treasure(20, "offaxis")]
        plain = simulate_find_times_batch(
            NonUniformSearch(k=1), worlds, 1, 30, seed=9
        )
        delayed = simulate_find_times_batch(
            NonUniformSearch(k=1), worlds, 1, 30, seed=9,
            start_delays=np.array([7.0]),
        )
        finite = np.isfinite(plain)
        assert np.array_equal(delayed[finite], plain[finite] + 7.0)

    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError):
            simulate_find_times_batch(
                NonUniformSearch(k=1), [World((3, 0))], 1, 5, seed=0,
                start_delays=np.array([-1.0]),
            )


class TestValidation:
    def test_rejects_bad_counts(self):
        worlds = [World((2, 2))]
        with pytest.raises(ValueError):
            simulate_find_times_batch(NonUniformSearch(k=1), worlds, 0, 5, seed=0)
        with pytest.raises(ValueError):
            simulate_find_times_batch(NonUniformSearch(k=1), worlds, 1, 0, seed=0)

    def test_rejects_empty_worlds(self):
        with pytest.raises(ValueError):
            simulate_find_times_batch(NonUniformSearch(k=1), [], 1, 5, seed=0)

    def test_rejects_treasure_on_source(self):
        with pytest.raises(ValueError):
            simulate_find_times_batch(
                NonUniformSearch(k=1), [(0, 0), (3, 1)], 1, 5, seed=0
            )

    def test_max_phases_guard(self):
        worlds = [place_treasure(10**6, "corner")]
        with pytest.raises(RuntimeError):
            simulate_find_times_batch(
                NonUniformSearch(k=1), worlds, 1, 2, seed=7, max_phases=5
            )
