"""Edge cases of the vectorised engine: boundaries the sweeps never hit."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    HarmonicSearch,
    NonUniformSearch,
    UniformSearch,
)
from repro.algorithms.harmonic import PowerLawRingFamily
from repro.sim.events import excursion_find_time, simulate_find_times
from repro.sim.rng import derive_rng
from repro.sim.world import World, place_treasure


class TestNearestTreasures:
    """Distance-1 and distance-2 treasures: the smallest possible worlds."""

    @pytest.mark.parametrize("treasure", [(1, 0), (0, 1), (-1, 0), (0, -1)])
    def test_distance_one_found_fast(self, treasure):
        world = World(treasure)
        times = simulate_find_times(NonUniformSearch(k=1), world, 1, 50, seed=0)
        assert np.all(np.isfinite(times))
        assert np.all(times >= 1)
        assert times.mean() < 100  # B(2) phases catch it immediately

    def test_distance_one_uniform(self):
        world = World((0, 1))
        times = simulate_find_times(UniformSearch(0.5), world, 1, 50, seed=1)
        assert np.all(np.isfinite(times)) and np.all(times >= 1)

    def test_diagonal_neighbour(self):
        world = World((1, 1))
        times = simulate_find_times(NonUniformSearch(k=2), world, 2, 50, seed=2)
        assert np.all(times >= 2)


class TestHorizonSemantics:
    def test_horizon_exactly_at_find_time_keeps_it(self):
        world = World((1, 0))
        base = simulate_find_times(NonUniformSearch(k=1), world, 1, 20, seed=3)
        capped = simulate_find_times(
            NonUniformSearch(k=1), world, 1, 20, seed=3, horizon=float(base.max())
        )
        assert np.array_equal(base, capped)

    def test_horizon_below_distance_finds_nothing(self):
        world = place_treasure(30, "offaxis")
        times = simulate_find_times(
            UniformSearch(0.5), world, 4, 10, seed=4, horizon=29
        )
        assert np.all(np.isinf(times))

    def test_horizon_interacts_with_delays(self):
        world = World((2, 1))
        times = simulate_find_times(
            NonUniformSearch(k=1),
            world,
            1,
            20,
            seed=5,
            horizon=10.0,
            start_delays=np.array([10.0]),
        )
        assert np.all(np.isinf(times))  # the agent never effectively starts


class TestHarmonicBudgetCap:
    def test_budget_cap_respected(self):
        family = PowerLawRingFamily(delta=0.2, budget_cap=1000)
        ux, uy, budgets = family.sample(np.random.default_rng(6), 5000)
        assert int(budgets.max()) <= 1000

    def test_radius_clip_keeps_ring_draw_valid(self):
        """Even with an absurd tail, cells must sit exactly on their ring."""
        family = PowerLawRingFamily(delta=0.101)
        rng = np.random.default_rng(7)
        ux, uy, _ = family.sample(rng, 50_000)
        # All radii positive and cells consistent (|u| = radius by const.).
        radii = np.abs(ux) + np.abs(uy)
        assert int(radii.min()) >= 1
        assert int(radii.max()) <= 2**40


class TestScalarEvaluatorEdges:
    def test_zero_phase_horizon(self):
        world = World((3, 0))
        t = excursion_find_time(
            NonUniformSearch(k=1), world, derive_rng(0, 0), horizon=0
        )
        assert math.isinf(t)

    def test_max_phases_zero(self):
        world = World((3, 0))
        t = excursion_find_time(
            NonUniformSearch(k=1), world, derive_rng(0, 1), max_phases=0
        )
        assert math.isinf(t)

    def test_one_shot_exhaustion_returns_inf(self):
        world = place_treasure(1000, "axis")
        t = excursion_find_time(HarmonicSearch(0.8), world, derive_rng(0, 2))
        # Almost surely not found by a single one-shot agent at D=1000.
        assert math.isinf(t) or t >= 1000


class TestTrialAgentShapes:
    def test_single_trial_single_agent(self):
        world = World((4, -2))
        times = simulate_find_times(NonUniformSearch(k=1), world, 1, 1, seed=8)
        assert times.shape == (1,) and np.isfinite(times[0])

    def test_many_agents_one_trial(self):
        world = World((4, -2))
        times = simulate_find_times(NonUniformSearch(k=64), world, 64, 1, seed=9)
        assert times.shape == (1,) and np.isfinite(times[0])
