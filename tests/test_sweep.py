"""Tests for the sweep subsystem (repro.sweep): specs, cache, runner."""

import math
import os

import numpy as np
import pytest

from repro.algorithms import NonUniformSearch, UniformSearch
from repro.scenarios import ScenarioSpec
from repro.sim.events import simulate_find_times_batch
from repro.sim.rng import spawn_seeds
from repro.sim.world import place_treasure
from repro.sweep import (
    CellResult,
    SweepSpec,
    build_algorithm,
    cache_path,
    load_result,
    run_sweep,
    save_result,
)


def _npz_entries(directory) -> int:
    """Cache entries in a directory (ignoring manifest sidecars)."""
    return sum(1 for name in os.listdir(directory) if name.endswith(".npz"))


def small_spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16),
        ks=(1, 4),
        trials=20,
        seed=42,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSweepSpec:
    def test_grid_cells_in_k_major_order(self):
        spec = small_spec()
        cells = [(c.distance, c.k) for c in spec.cells()]
        assert cells == [(8, 1), (16, 1), (8, 4), (16, 4)]

    def test_require_k_le_d_drops_cells_and_groups(self):
        spec = small_spec(distances=(2, 16), ks=(1, 4, 32), require_k_le_d=True)
        assert [(c.distance, c.k) for c in spec.cells()] == [
            (2, 1), (16, 1), (16, 4),
        ]
        assert [g.k for g in spec.groups()] == [1, 4]

    def test_params_normalised_for_hashing(self):
        a = small_spec(algorithm="uniform", params={"eps": 0.5})
        b = small_spec(algorithm="uniform", params=(("eps", 0.5),))
        assert a == b
        assert a.spec_hash() == b.spec_hash()

    @pytest.mark.parametrize(
        "override",
        [
            {"trials": 21},
            {"seed": 43},
            {"placement": "corner"},
            {"horizon": 100.0},
            {"distances": (8, 32)},
            {"ks": (1, 2)},
            {"require_k_le_d": True},
            {"scenario": ScenarioSpec(crash_hazard=0.01)},
            {"scenario": ScenarioSpec(speed_spread=1.0)},
            {"scenario": ScenarioSpec(start_stagger=5.0)},
            {"scenario": ScenarioSpec(detection_prob=0.9)},
        ],
    )
    def test_hash_sensitive_to_every_knob(self, override):
        assert small_spec().spec_hash() != small_spec(**override).spec_hash()

    def test_distinct_scenarios_hash_distinctly(self):
        a = small_spec(scenario=ScenarioSpec(crash_hazard=0.01))
        b = small_spec(scenario=ScenarioSpec(crash_hazard=0.02))
        assert a.spec_hash() != b.spec_hash()

    def test_default_scenario_is_canonicalised_to_none(self):
        # "No scenario" and "explicitly unperturbed" are the same sweep:
        # identical spec, identical hash, identical cache entry.
        plain = small_spec()
        explicit = small_spec(scenario=ScenarioSpec())
        assert explicit.scenario is None
        assert plain == explicit
        assert plain.spec_hash() == explicit.spec_hash()

    def test_scenario_accepts_mapping(self):
        spec = small_spec(scenario={"crash_hazard": 0.05})
        assert spec.scenario == ScenarioSpec(crash_hazard=0.05)
        with pytest.raises(TypeError):
            small_spec(scenario="crashy")

    def test_dict_roundtrip(self):
        spec = small_spec(
            algorithm="uniform", params={"eps": 0.3}, horizon=500.0
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_dict_roundtrip_with_scenario(self):
        spec = small_spec(
            scenario=ScenarioSpec(crash_hazard=0.01, speed_spread=2.0)
        )
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(distances=())
        with pytest.raises(ValueError):
            small_spec(ks=(0,))
        with pytest.raises(ValueError):
            small_spec(trials=0)
        with pytest.raises(TypeError):
            small_spec(seed=np.random.SeedSequence(0))


class TestBuildAlgorithm:
    def test_nonuniform_receives_true_k(self):
        algorithm = build_algorithm("nonuniform", 8, {})
        assert isinstance(algorithm, NonUniformSearch)
        assert algorithm.k == 8.0

    def test_uniform_takes_eps_param(self):
        algorithm = build_algorithm("uniform", 8, {"eps": 0.25})
        assert isinstance(algorithm, UniformSearch)
        assert algorithm.eps == 0.25

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_algorithm("definitely-not-registered", 1, {})


class TestRunSweep:
    def test_matches_direct_batch_call(self):
        spec = small_spec(ks=(4,))
        result = run_sweep(spec, cache=False)
        (group,) = spec.groups()
        (group_seed,) = spawn_seeds(spec.seed, 1)
        children = spawn_seeds(group_seed, 1 + len(group.distances))
        worlds = [
            place_treasure(d, spec.placement, seed=s)
            for d, s in zip(group.distances, children[1:])
        ]
        direct = simulate_find_times_batch(
            NonUniformSearch(k=4), worlds, 4, spec.trials, children[0]
        )
        for row, distance in zip(direct, group.distances):
            assert np.array_equal(result.cell(distance, 4).times, row)

    def test_cell_lookup_raises_off_grid(self):
        result = run_sweep(small_spec(), cache=False)
        with pytest.raises(KeyError):
            result.cell(999, 1)

    def test_workers_match_serial(self):
        spec = small_spec()
        serial = run_sweep(spec, cache=False)
        pooled = run_sweep(spec, workers=2, cache=False)
        for a, b in zip(serial.cells, pooled.cells):
            assert (a.distance, a.k) == (b.distance, b.k)
            assert np.array_equal(a.times, b.times)


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        spec = small_spec()
        first = run_sweep(spec, cache_dir=str(tmp_path))
        second = run_sweep(spec, cache_dir=str(tmp_path))
        assert not first.from_cache
        assert second.from_cache
        for a, b in zip(first.cells, second.cells):
            assert (a.distance, a.k) == (b.distance, b.k)
            assert np.array_equal(a.times, b.times)

    def test_cache_disabled_writes_nothing(self, tmp_path):
        run_sweep(small_spec(), cache=False, cache_dir=str(tmp_path))
        assert os.listdir(tmp_path) == []

    def test_corrupt_entry_falls_back_to_recompute(self, tmp_path):
        spec = small_spec()
        path = cache_path(spec, str(tmp_path))
        os.makedirs(tmp_path, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not an npz file")
        result = run_sweep(spec, cache_dir=str(tmp_path))
        assert not result.from_cache
        assert len(result) == 4

    def test_load_rejects_entry_for_different_spec(self, tmp_path):
        spec = small_spec()
        other = small_spec(seed=999)
        result = run_sweep(spec, cache=False)
        path = os.path.join(str(tmp_path), "entry.npz")
        cells = [c for c in spec.cells()]
        times = np.stack([c.times for c in result.cells])
        assert save_result(spec, path, cells, times)
        assert load_result(spec, path) is not None
        assert load_result(other, path) is None

    def test_quick_full_specs_cache_separately(self, tmp_path):
        quick = small_spec(trials=10)
        full = small_spec(trials=30)
        run_sweep(quick, cache_dir=str(tmp_path))
        run_sweep(full, cache_dir=str(tmp_path))
        assert _npz_entries(tmp_path) == 2
        assert run_sweep(quick, cache_dir=str(tmp_path)).from_cache
        assert run_sweep(full, cache_dir=str(tmp_path)).from_cache

    def test_changed_scenario_misses_identical_scenario_hits(self, tmp_path):
        plain = small_spec(trials=10)
        crashy = small_spec(
            trials=10, scenario=ScenarioSpec(crash_hazard=0.01), horizon=1e5
        )
        run_sweep(plain, cache_dir=str(tmp_path))
        # A perturbed spec must not be served the unperturbed entry.
        perturbed = run_sweep(crashy, cache_dir=str(tmp_path))
        assert not perturbed.from_cache
        assert _npz_entries(tmp_path) == 2
        # Identical specs (including an equal-but-not-identical scenario)
        # hit their own entries.
        again = run_sweep(
            small_spec(
                trials=10, scenario=ScenarioSpec(crash_hazard=0.01),
                horizon=1e5,
            ),
            cache_dir=str(tmp_path),
        )
        assert again.from_cache
        for a, b in zip(perturbed.cells, again.cells):
            assert np.array_equal(a.times, b.times)
        # The default-scenario spec still hits the plain entry.
        assert run_sweep(
            small_spec(trials=10, scenario=ScenarioSpec()),
            cache_dir=str(tmp_path),
        ).from_cache

    def test_scenario_changes_results(self, tmp_path):
        plain = run_sweep(small_spec(trials=15, horizon=1e5), cache=False)
        crashy = run_sweep(
            small_spec(
                trials=15, horizon=1e5,
                scenario=ScenarioSpec(crash_hazard=0.05),
            ),
            cache=False,
        )
        plain_times = np.concatenate([c.times for c in plain.cells])
        crashy_times = np.concatenate([c.times for c in crashy.cells])
        assert not np.array_equal(plain_times, crashy_times)


class TestCellResult:
    def test_summary_statistics(self):
        cell = CellResult(distance=8, k=2, times=np.array([10.0, 20.0, 30.0]))
        assert cell.trials == 3
        assert cell.mean == 20.0
        assert cell.success_rate == 1.0
        assert cell.stderr == pytest.approx(10.0 / math.sqrt(3))

    def test_failed_trials_sentinels(self):
        cell = CellResult(distance=8, k=2, times=np.array([10.0, np.inf]))
        assert math.isinf(cell.mean)
        assert math.isinf(cell.stderr)
        assert cell.success_rate == 0.5
        assert cell.finite_mean == 10.0

    def test_single_trial_stderr_is_nan(self):
        cell = CellResult(distance=8, k=2, times=np.array([10.0]))
        assert math.isnan(cell.stderr)


class TestEmptyGrid:
    def test_fully_filtered_grid_yields_empty_result(self, tmp_path):
        spec = small_spec(distances=(4,), ks=(8,), require_k_le_d=True)
        result = run_sweep(spec, cache_dir=str(tmp_path))
        assert len(result) == 0
        assert not result.from_cache
        assert os.listdir(tmp_path) == []


class TestManifestSidecars:
    """Metadata-only ``cache list``: sidecar manifests (see cache.py)."""

    def _entry(self, tmp_path):
        from repro.sweep import list_entries

        entries = list_entries(str(tmp_path))
        assert len(entries) == 1
        return entries[0]

    def test_save_writes_consistent_sidecar(self, tmp_path):
        from repro.sweep.cache import MANIFEST_SUFFIX

        run_sweep(small_spec(trials=10), cache_dir=str(tmp_path))
        (npz,) = [p for p in tmp_path.iterdir() if p.suffix == ".npz"]
        sidecar = tmp_path / (npz.name + MANIFEST_SUFFIX)
        assert sidecar.exists()
        entry = self._entry(tmp_path)
        assert entry.kind == "sweep"
        assert entry.algorithm == "nonuniform"
        assert entry.cells == 4
        assert entry.trials == 40

    def test_listing_without_sidecar_falls_back_to_archive(self, tmp_path):
        from repro.sweep.cache import MANIFEST_SUFFIX

        run_sweep(small_spec(trials=10), cache_dir=str(tmp_path))
        with_sidecar = self._entry(tmp_path)
        for sidecar in tmp_path.glob("*" + MANIFEST_SUFFIX):
            sidecar.unlink()
        fallback = self._entry(tmp_path)
        assert fallback == with_sidecar

    def test_stale_sidecar_is_ignored(self, tmp_path):
        import json

        from repro.sweep.cache import MANIFEST_SUFFIX

        run_sweep(small_spec(trials=10), cache_dir=str(tmp_path))
        truth = self._entry(tmp_path)
        (sidecar,) = tmp_path.glob("*" + MANIFEST_SUFFIX)
        # An npz rewritten by an older tool leaves a size-mismatched
        # manifest behind; a lying sidecar must lose to the archive.
        sidecar.write_text(json.dumps({
            "kind": "sweep", "algorithm": "bogus", "cells": 999,
            "trials": 999, "npz_size": -1,
        }))
        assert self._entry(tmp_path) == truth

    def test_prune_removes_sidecars(self, tmp_path):
        from repro.sweep import prune_entries

        run_sweep(small_spec(trials=10), cache_dir=str(tmp_path))
        pruned = prune_entries(str(tmp_path), older_than_days=0.0)
        assert len(pruned) == 1
        assert list(tmp_path.iterdir()) == []


class TestAppendBlocks:
    def test_merge_keeps_longer_and_foreign_cells(self, tmp_path):
        from repro.stats import BudgetPolicy
        from repro.sweep import append_blocks, block_store_path, load_blocks, save_blocks

        spec = small_spec(
            budget=BudgetPolicy.target_rel_ci(1e-9, min_trials=32, max_trials=32)
        )
        path = block_store_path(spec, str(tmp_path))
        assert save_blocks(spec, path, {
            (8, 1): np.arange(64, dtype=np.float64),
            (99, 1): np.arange(32, dtype=np.float64),
        })
        # A writer that loaded (8,1) at 32 trials and extended nothing
        # must not clobber the disk's longer 64-trial version, and must
        # keep the (99,1) cell it never saw.
        assert append_blocks(spec, path, {
            (8, 1): np.arange(32, dtype=np.float64),
            (16, 4): np.arange(32, dtype=np.float64) + 7.0,
        })
        merged = load_blocks(spec, path)
        assert set(merged) == {(8, 1), (16, 4), (99, 1)}
        assert merged[(8, 1)].size == 64
        assert merged[(16, 4)][0] == 7.0
