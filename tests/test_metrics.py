"""Tests for coverage metrics (repro.sim.metrics)."""

import pytest

from repro.core.geometry import annulus_size
from repro.sim.metrics import (
    ball_coverage_fraction,
    coverage_by_annulus,
    distinct_nodes_visited,
    union_first_visits,
)


def visits(*cells_with_times):
    return dict(cells_with_times)


class TestUnionFirstVisits:
    def test_takes_earliest_time(self):
        a = visits(((0, 0), 0), ((1, 0), 5))
        b = visits(((1, 0), 3), ((2, 0), 7))
        union = union_first_visits([a, b])
        assert union[(1, 0)] == 3
        assert union[(2, 0)] == 7

    def test_cutoff_filters(self):
        a = visits(((1, 0), 5), ((2, 0), 50))
        union = union_first_visits([a], cutoff=10)
        assert (1, 0) in union and (2, 0) not in union

    def test_empty(self):
        assert union_first_visits([]) == {}


class TestCoverageByAnnulus:
    def test_counts_cells_in_correct_annuli(self):
        maps = [
            visits(((1, 0), 1), ((2, 0), 2), ((3, 0), 3), ((0, 5), 9)),
            visits(((2, 0), 4), ((-4, 0), 6)),
        ]
        cov = coverage_by_annulus(maps, [1, 3, 5])
        # Annulus (1,3]: cells (2,0) and (3,0) -> covered 2.
        assert cov[0].inner == 1 and cov[0].outer == 3
        assert cov[0].covered == 2
        assert cov[0].size == annulus_size(1, 3)
        # Annulus (3,5]: cells (0,5) and (-4,0) -> covered 2.
        assert cov[1].covered == 2
        # Per-agent means: agent0 has (2,0),(3,0) in first annulus; agent1 has (2,0).
        assert cov[0].per_agent_mean == pytest.approx(1.5)

    def test_fraction_property(self):
        maps = [visits(((2, 0), 1))]
        cov = coverage_by_annulus(maps, [1, 2])
        assert cov[0].fraction == pytest.approx(1 / annulus_size(1, 2))

    def test_cutoff_respected(self):
        maps = [visits(((2, 0), 100))]
        cov = coverage_by_annulus(maps, [1, 2], cutoff=10)
        assert cov[0].covered == 0

    def test_cells_outside_boundaries_ignored(self):
        maps = [visits(((1, 0), 1), ((0, 9), 2))]
        cov = coverage_by_annulus(maps, [1, 3])
        assert cov[0].covered == 0  # (1,0) is inside r=1, (0,9) beyond r=3

    def test_rejects_bad_boundaries(self):
        with pytest.raises(ValueError):
            coverage_by_annulus([], [3])
        with pytest.raises(ValueError):
            coverage_by_annulus([], [3, 3])


class TestBallCoverage:
    def test_full_coverage(self):
        cells = {(x, y): 1 for x in range(-2, 3) for y in range(-2, 3)}
        maps = [cells]
        assert ball_coverage_fraction(maps, 2) == 1.0

    def test_partial(self):
        maps = [visits(((0, 0), 0), ((1, 0), 1))]
        assert ball_coverage_fraction(maps, 1) == pytest.approx(2 / 5)


class TestDistinctNodes:
    def test_counts_per_agent(self):
        maps = [visits(((0, 0), 0), ((1, 0), 1)), visits(((0, 0), 0))]
        assert distinct_nodes_visited(maps) == [2, 1]

    def test_cutoff(self):
        maps = [visits(((0, 0), 0), ((1, 0), 100))]
        assert distinct_nodes_visited(maps, cutoff=10) == [1]
