"""The determinism contract checker (``repro.checks``; DESIGN.md §9).

Each AST rule is pinned against a seeded-violation fixture in
``tests/fixtures/checks/`` (excluded from clean-tree runs), the clean
tree itself is asserted finding-free, and the R005 hash manifest is
driven through every drift mode: tampered pin, missing file, version
bump without regeneration, and a hashed-field change.
"""

import json
import os

import pytest

from repro.checks import (
    STREAM_REGISTRY,
    Finding,
    format_findings,
    lint_file,
    register_stream,
    run_checks,
    scan_stream_files,
    stream_name,
)
from repro.checks.manifest import (
    DEFAULT_MANIFEST_PATH,
    build_manifest,
    check_manifest,
    write_manifest,
)
from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "checks")


def fixture(name: str) -> str:
    return os.path.join(FIXTURES, name)


class TestLintRules:
    def test_ambient_randomness_fires_r001(self):
        findings = lint_file(fixture("ambient_rng.py"))
        assert [f.rule for f in findings] == ["R001", "R001", "R001"]
        messages = " ".join(f.message for f in findings)
        assert "numpy.random.normal" in messages
        assert "numpy.random.seed" in messages
        assert "random.random" in messages

    def test_wall_clock_seed_fires_r001(self):
        findings = lint_file(fixture("time_seed.py"))
        assert [f.rule for f in findings] == ["R001"]
        assert "time.time" in findings[0].message

    def test_fresh_entropy_fires_r002_in_engine_scope(self):
        findings = lint_file(
            fixture("fresh_entropy.py"), relpath="sim/fake_engine.py"
        )
        assert [f.rule for f in findings] == ["R002", "R002"]

    def test_r002_is_scoped_to_engine_directories(self):
        # The same file outside sim//sweep/ is legitimate (tests and
        # examples may build unseeded generators).
        assert lint_file(fixture("fresh_entropy.py")) == []

    def test_rng_module_itself_is_exempt(self):
        path = os.path.join(
            os.path.dirname(__file__), "..", "src", "repro", "sim", "rng.py"
        )
        assert lint_file(os.path.abspath(path)) == []

    def test_worker_state_fires_r004(self):
        findings = lint_file(fixture("worker_leak.py"))
        assert {f.rule for f in findings} == {"R004"}
        messages = " ".join(f.message for f in findings)
        assert "derive_seed" in messages
        assert "SweepSpec" in messages
        # The remote-backend taints: host lists and ports are execution
        # layout exactly like worker counts.
        assert "`hosts`" in messages
        assert "`port`" in messages
        # One finding per tainted name per call site: `executor.workers`
        # carries two (`executor` and `workers`), the other three
        # violations one each.
        assert len(findings) == 5

    def test_obs_state_fires_r004(self):
        # Observability taints: wall-clock traces, metrics, spans, and
        # the event bus are execution-layout facts exactly like worker
        # counts — none may reach a seed or a hashed SweepSpec field.
        findings = lint_file(fixture("obs_taint.py"))
        assert {f.rule for f in findings} == {"R004"}
        messages = " ".join(f.message for f in findings)
        for name in ("trace", "metrics", "span", "bus", "utilization"):
            assert f"`{name}`" in messages
        assert "derive_seed" in messages
        assert "SweepSpec" in messages
        assert len(findings) == 5

    def test_fault_state_fires_r004(self):
        # Fault-tolerance taints: chaos plans, retry counters, and
        # checkpoint/resume bookkeeping record what *failed* during a
        # run — seeding from them would fork faulted vs clean results,
        # the dependence the chaos-parity suite rules out.
        findings = lint_file(fixture("fault_taint.py"))
        assert {f.rule for f in findings} == {"R004"}
        messages = " ".join(f.message for f in findings)
        for name in (
            "fault_plan", "retries", "checkpoint", "quarantine", "journal",
        ):
            assert f"`{name}`" in messages
        assert "derive_seed" in messages
        assert "SweepSpec" in messages
        assert len(findings) == 5

    def test_clean_module_and_suppression_comment(self):
        # clean.py contains one deliberate ambient draw behind a
        # `# repro: allow(R001)` marker; nothing may fire.
        assert lint_file(fixture("clean.py")) == []

    def test_syntax_error_reports_r000(self):
        findings = lint_file("broken.py", text="def broken(:\n")
        assert [f.rule for f in findings] == ["R000"]

    def test_legacy_placement_shape_fires_r001_and_r003(self):
        # The pre-PLACEMENT_DRAW_STREAM placement shape: an ambient draw
        # plus a bare-literal stream tag.  Both halves must keep firing.
        findings = lint_file(fixture("placement_rng.py"))
        assert [f.rule for f in findings] == ["R001"]
        assert "random.uniform" in findings[0].message
        stream_findings = scan_stream_files([fixture("placement_rng.py")])
        assert [f.rule for f in stream_findings] == ["R003"]
        assert "PLACEMENT_HACK_STREAM" in stream_findings[0].message
        assert "bare" in stream_findings[0].message


class TestStreamScan:
    def test_duplicate_and_misregistered_streams_fire_r003(self):
        findings = scan_stream_files([fixture("dup_stream.py")])
        assert [f.rule for f in findings] == ["R003"] * 3
        messages = " ".join(f.message for f in findings)
        assert "UNREGISTERED_STREAM" in messages  # bare literal
        assert "collides" in messages  # BETA == ALPHA tag
        assert "mismatched name" in messages  # GAMMA registered as MISNAMED

    def test_registered_tree_streams_are_disjoint(self):
        import repro.algorithms.belief  # noqa: F401 - registers BELIEF_STREAM
        import repro.sweep.runner  # noqa: F401 - registers all streams

        streams = dict(STREAM_REGISTRY)
        for name in (
            "BLOCK_STREAM",
            "SCENARIO_STREAM",
            "GROUP_CHUNK_STREAM",
            "PLACEMENT_STREAM",
            "PLACEMENT_DRAW_STREAM",
            "TARGET_STREAM",
            "BELIEF_STREAM",
        ):
            assert name in streams
        assert len(set(streams.values())) == len(streams)

    def test_registry_rejects_value_collision(self):
        register_stream("TEST_UNIQUE_A_STREAM", 0x7E5701)
        try:
            with pytest.raises(ValueError, match="collision"):
                register_stream("TEST_UNIQUE_B_STREAM", 0x7E5701)
            with pytest.raises(ValueError, match="re-registered"):
                register_stream("TEST_UNIQUE_A_STREAM", 0x7E5702)
            # Idempotent for the identical pair (module reloads).
            assert register_stream("TEST_UNIQUE_A_STREAM", 0x7E5701) == 0x7E5701
            assert stream_name(0x7E5701) == "TEST_UNIQUE_A_STREAM"
        finally:
            STREAM_REGISTRY.pop("TEST_UNIQUE_A_STREAM", None)

    def test_registry_rejects_non_int_tags(self):
        with pytest.raises(TypeError):
            register_stream("TEST_BOOL_STREAM", True)


class TestCleanTree:
    def test_full_tree_has_zero_findings(self):
        assert run_checks() == []

    def test_fixture_corpus_is_excluded_by_default(self):
        tests_root = os.path.dirname(os.path.abspath(__file__))
        findings = run_checks([tests_root])
        assert findings == []

    def test_fixture_corpus_fires_when_included(self):
        findings = run_checks([FIXTURES], exclude=())
        rules = {f.rule for f in findings}
        assert {"R001", "R003", "R004"} <= rules


class TestManifest:
    def test_committed_manifest_matches_live_code(self):
        assert check_manifest() == []

    def test_missing_manifest_is_a_finding(self, tmp_path):
        findings = check_manifest(str(tmp_path / "nope.json"))
        assert any(
            f.rule == "R005" and "missing" in f.message for f in findings
        )

    def test_regenerated_manifest_is_clean(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        write_manifest(path)
        assert check_manifest(path) == []

    def test_tampered_hash_is_reported_with_fix_hint(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = write_manifest(path)
        name = sorted(manifest["specs"])[0]
        manifest["specs"][name]["spec_hash"] = "0" * 20
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        findings = check_manifest(path)
        assert any(
            f.rule == "R005" and "spec_hash drifted" in f.message
            for f in findings
        )
        assert any("--fix-manifest" in f.message for f in findings)

    def test_version_bump_requires_regeneration(self, tmp_path, monkeypatch):
        import repro.sweep.spec as spec_module

        path = str(tmp_path / "manifest.json")
        write_manifest(path)
        monkeypatch.setattr(spec_module, "SPEC_VERSION", 3)
        findings = check_manifest(path)
        assert any("spec_version changed" in f.message for f in findings)
        # After regenerating under the new version, the check is green
        # again: bump + --fix-manifest is the sanctioned change path.
        write_manifest(path)
        assert check_manifest(path) == []

    def test_hashed_field_change_without_bump_is_caught(
        self, tmp_path, monkeypatch
    ):
        import repro.sweep.spec as spec_module

        path = str(tmp_path / "manifest.json")
        write_manifest(path)
        original = spec_module.SweepSpec.to_dict

        def with_extra_field(self):
            data = original(self)
            data["new_knob"] = 1
            return data

        monkeypatch.setattr(spec_module.SweepSpec, "to_dict", with_extra_field)
        findings = check_manifest(path)
        assert any(
            f.rule == "R005" and "spec_hash drifted" in f.message
            for f in findings
        )
        assert any(
            "partition changed" in f.message and "new_knob" in f.message
            for f in findings
        )

    def test_field_partitions_are_structurally_sound(self):
        manifest = build_manifest()
        for entry in manifest["specs"].values():
            for key, part in entry["fields"].items():
                if part == "data":
                    assert key == "block_schedule"

    def test_spec_field_introspection_helpers(self):
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec(
            algorithm="uniform", distances=(4,), ks=(1,), trials=8
        )
        spec_fields = set(spec.hashed_fields())
        data_fields = set(spec.data_fields())
        assert data_fields - spec_fields == {"block_schedule"}
        assert "trials" in spec_fields - data_fields


class TestFindingRendering:
    def test_render_and_report_format(self):
        finding = Finding(
            path="a.py", line=3, col=7, rule="R001", message="bad draw"
        )
        assert finding.render() == "a.py:3:7: R001 bad draw"
        report = format_findings([finding])
        assert report.endswith("1 finding")
        assert format_findings([]).endswith("0 findings")


class TestCheckCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violation_root_exits_nonzero(self, capsys):
        # Linting the fixture corpus directly must fail the run and
        # print localized findings.
        assert main(["check", FIXTURES]) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "ambient_rng.py" in out

    def test_fix_manifest_is_idempotent_on_clean_tree(self, capsys):
        with open(DEFAULT_MANIFEST_PATH, "rb") as handle:
            before = handle.read()
        assert main(["check", "--fix-manifest"]) == 0
        with open(DEFAULT_MANIFEST_PATH, "rb") as handle:
            assert handle.read() == before
        assert "re-pinned" in capsys.readouterr().out
