"""Tests for the deterministic phase schedules (repro.core.schedule).

These include direct checks of the proofs' Assertion 1 (stage times are
geometric) for the *implemented* schedules, rounding included.
"""

import itertools
import math

import pytest

from repro.core.schedule import (
    PhaseSpec,
    guess_cycle_schedule,
    nonuniform_schedule,
    nonuniform_stage_phases,
    phase_max_duration,
    uniform_big_stage_phases,
    uniform_phase,
    uniform_schedule,
    uniform_stage_phases,
)


class TestPhaseSpec:
    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            PhaseSpec(radius=0, budget=1)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            PhaseSpec(radius=1, budget=0)

    def test_max_duration_accounts_for_spiral_end(self):
        spec = PhaseSpec(radius=4, budget=100)
        # 2*4 travel + 100 spiral + return from the spiral end.
        assert phase_max_duration(spec) >= 108


class TestNonUniformSchedule:
    def test_stage_structure(self):
        phases = nonuniform_stage_phases(3, k=4.0)
        assert [p.radius for p in phases] == [2, 4, 8]
        assert [p.budget for p in phases] == [4, 16, 64]  # 2^(2i+2)/4

    def test_budget_scales_inversely_with_k(self):
        low_k = nonuniform_stage_phases(5, k=1.0)
        high_k = nonuniform_stage_phases(5, k=16.0)
        for lo, hi in zip(low_k, high_k):
            assert lo.budget == 16 * hi.budget or lo.budget <= 16 * hi.budget + 16

    def test_budget_is_at_least_one_for_huge_k(self):
        phases = nonuniform_stage_phases(2, k=1e9)
        assert all(p.budget >= 1 for p in phases)

    def test_schedule_iterates_stages_in_order(self):
        specs = list(itertools.islice(nonuniform_schedule(2.0), 6))
        labels = [s.label for s in specs]
        assert labels[0] == ("stage", 1, "phase", 1)
        assert labels[1] == ("stage", 2, "phase", 1)
        assert labels[2] == ("stage", 2, "phase", 2)
        assert labels[5] == ("stage", 3, "phase", 3)

    @pytest.mark.parametrize("k", [1.0, 4.0, 64.0])
    def test_stage_time_is_geometric(self, k):
        """Proof of Thm 3.1: stage j takes O(2^j + 2^{2j}/k)."""
        for j in range(2, 12):
            duration = sum(
                phase_max_duration(p) for p in nonuniform_stage_phases(j, k)
            )
            bound = 2**j + 2 ** (2 * j) / k
            assert duration <= 40 * bound

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            nonuniform_stage_phases(0, 1.0)
        with pytest.raises(ValueError):
            nonuniform_stage_phases(1, 0.0)


class TestUniformSchedule:
    def test_phase_formula_examples(self):
        # i = j = 0: D = sqrt(2^0 / 1) = 1, budget = ceil(2^2 / 1) = 4.
        phase = uniform_phase(0, 0, eps=0.5)
        assert phase.radius == 1 and phase.budget == 4
        # i = 4, j = 2: D = sqrt(2^6 / 2^1.5), t = 2^6 / 2^1.5.
        phase = uniform_phase(4, 2, eps=0.5)
        assert phase.radius == math.floor(math.sqrt(2**6 / 2**1.5))
        assert phase.budget == math.ceil(2**6 / 2**1.5)

    def test_phase_rejects_bad_indices(self):
        with pytest.raises(ValueError):
            uniform_phase(2, 3, eps=0.5)

    def test_stage_zero_has_one_phase(self):
        assert len(uniform_stage_phases(0, eps=0.3)) == 1

    def test_big_stage_phase_count_is_triangular(self):
        for ell in range(5):
            phases = uniform_big_stage_phases(ell, eps=0.3)
            assert len(phases) == (ell + 1) * (ell + 2) // 2

    @pytest.mark.parametrize("eps", [0.1, 0.5, 1.0])
    def test_assertion_1_stage_time_geometric(self, eps):
        """Assertion 1: stage i takes O(2^i); the constant depends on eps only."""
        durations = [
            sum(phase_max_duration(p) for p in uniform_stage_phases(i, eps))
            for i in range(2, 18)
        ]
        ratios = [d / 2**i for i, d in zip(range(2, 18), durations)]
        # Bounded above by a constant (the harmonic-like sum over j converges).
        assert max(ratios) <= 30 * max(1.0, 1.0 / eps) * 4
        # And the sequence of ratios stabilises (no super-geometric growth).
        assert ratios[-1] <= 2 * ratios[len(ratios) // 2] + 1

    @pytest.mark.parametrize("eps", [0.2, 0.7])
    def test_big_stage_time_geometric(self, eps):
        """Time until big-stage ell completes is O(2^ell)."""
        cumulative = 0.0
        for ell in range(0, 14):
            cumulative += sum(
                phase_max_duration(p) for p in uniform_big_stage_phases(ell, eps)
            )
            assert cumulative <= 300 * max(1.0, 1.0 / eps) * 2**ell

    def test_radius_grows_with_stage(self):
        eps = 0.4
        r_small = uniform_phase(4, 2, eps).radius
        r_large = uniform_phase(10, 2, eps).radius
        assert r_large > r_small

    def test_schedule_is_infinite_and_ordered(self):
        specs = list(itertools.islice(uniform_schedule(0.5), 10))
        assert specs[0].label == ("big-stage", 0, "stage", 0, "phase", 0)
        assert specs[1].label == ("big-stage", 1, "stage", 0, "phase", 0)
        assert specs[2].label == ("big-stage", 1, "stage", 1, "phase", 0)
        assert specs[3].label == ("big-stage", 1, "stage", 1, "phase", 1)

    def test_rejects_non_positive_eps(self):
        with pytest.raises(ValueError):
            next(uniform_schedule(0.0))


class TestGuessCycleSchedule:
    def test_cycles_through_guesses(self):
        specs = list(itertools.islice(guess_cycle_schedule([1.0, 4.0]), 6))
        # Stage 1 of guess 0, stage 1 of guess 1, then stage 2 of each.
        assert specs[0].label[:2] == ("guess", 0)
        assert specs[1].label[:2] == ("guess", 1)
        assert specs[2].label[:2] == ("guess", 0)

    def test_budgets_reflect_guess(self):
        specs = list(itertools.islice(guess_cycle_schedule([1.0, 16.0]), 2))
        assert specs[0].budget == 16  # 2^4 / 1
        assert specs[1].budget == 1  # 2^4 / 16

    def test_rejects_empty_or_bad_guesses(self):
        with pytest.raises(ValueError):
            next(guess_cycle_schedule([]))
        with pytest.raises(ValueError):
            next(guess_cycle_schedule([1.0, -2.0]))
