"""Tests for adaptive precision-driven sweep execution.

The load-bearing guarantees:

* ``fixed(n)`` budgets are *canonicalised away*: same spec, same hash,
  same cache entry, bitwise identical results as today's runner;
* adaptive cells consume deterministic block streams — results are
  independent of caching, worker count, and how allocation was split
  across runs (cache top-up appends blocks, bitwise);
* the v2 block store is keyed by data identity and shares cells across
  grids and precision targets; v1 entries stay readable (and are still
  what fixed sweeps write).
"""

import json
import math
import os

import numpy as np
import pytest

from repro.scenarios import ScenarioSpec
from repro.stats import BudgetPolicy
from repro.sweep import (
    SweepSpec,
    block_store_path,
    block_trials,
    cache_path,
    completed_trials,
    load_blocks,
    run_sweep,
    save_blocks,
    whole_blocks,
)


def _npz_entries(directory) -> int:
    """Cache entries in a directory (ignoring manifest sidecars)."""
    return sum(1 for name in os.listdir(directory) if name.endswith(".npz"))


def small_spec(**overrides):
    base = dict(
        algorithm="nonuniform",
        distances=(8, 16),
        ks=(1, 4),
        trials=20,
        seed=42,
    )
    base.update(overrides)
    return SweepSpec(**base)


def adaptive(rel_ci=1e-9, min_trials=32, max_trials=64, **overrides):
    return small_spec(
        budget=BudgetPolicy.target_rel_ci(
            rel_ci, min_trials=min_trials, max_trials=max_trials
        ),
        **overrides,
    )


class TestBlockSchedule:
    def test_capped_doubling_schedule(self):
        # Doubling up to the cap, then flat: heavy cells decompose into
        # many equal blocks the executor can run concurrently.
        assert [block_trials(b) for b in range(7)] == [
            32, 32, 64, 128, 128, 128, 128,
        ]
        assert [completed_trials(b) for b in range(8)] == [
            0, 32, 64, 128, 256, 384, 512, 640,
        ]

    def test_whole_blocks_inverts_cumulative(self):
        for blocks in range(10):
            assert whole_blocks(completed_trials(blocks)) == blocks
        assert whole_blocks(33) == 1  # ragged tails truncate down
        assert whole_blocks(100) == 2
        assert whole_blocks(300) == 4
        assert whole_blocks(0) == 0


class TestFixedPolicyParity:
    def test_fixed_budget_is_canonicalised_to_plain_spec(self):
        plain = small_spec()
        fixed = small_spec(trials=5, budget=BudgetPolicy.fixed(20))
        assert fixed.budget is None
        assert fixed.trials == 20
        assert fixed == plain
        assert fixed.spec_hash() == plain.spec_hash()
        assert fixed.to_dict() == plain.to_dict()

    def test_fixed_budget_results_bitwise_identical(self):
        plain = run_sweep(small_spec(), cache=False)
        fixed = run_sweep(
            small_spec(budget=BudgetPolicy.fixed(20)), cache=False
        )
        for a, b in zip(plain.cells, fixed.cells):
            assert (a.distance, a.k) == (b.distance, b.k)
            assert np.array_equal(a.times, b.times)

    def test_fixed_budget_shares_cache_entry(self, tmp_path):
        first = run_sweep(small_spec(), cache_dir=str(tmp_path))
        assert not first.from_cache
        second = run_sweep(
            small_spec(budget=BudgetPolicy.fixed(20)), cache_dir=str(tmp_path)
        )
        assert second.from_cache
        for a, b in zip(first.cells, second.cells):
            assert np.array_equal(a.times, b.times)
        assert _npz_entries(tmp_path) == 1

    def test_budget_key_absent_from_plain_spec_dict(self):
        # Pre-adaptive cache entries must keep hitting: the canonical
        # dict of a budget-less spec is exactly the PR-3-era dict.
        assert "budget" not in small_spec().to_dict()
        assert "budget" in adaptive().to_dict()


class TestSpecBudget:
    def test_adaptive_budget_changes_hash(self):
        assert adaptive().spec_hash() != small_spec().spec_hash()
        assert (
            adaptive(rel_ci=0.1).spec_hash()
            != adaptive(rel_ci=0.2).spec_hash()
        )

    def test_budget_accepts_mapping(self):
        spec = small_spec(
            budget={"kind": "target_rel_ci", "rel_ci": 0.1,
                    "min_trials": 8, "max_trials": 16}
        )
        assert spec.budget == BudgetPolicy.target_rel_ci(
            0.1, min_trials=8, max_trials=16
        )
        with pytest.raises(TypeError):
            small_spec(budget="lots")

    def test_dict_roundtrip_with_budget(self):
        spec = adaptive(rel_ci=0.07, max_trials=128)
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_data_hash_ignores_allocation_knobs(self):
        base = adaptive()
        assert base.data_hash() == adaptive(rel_ci=0.5).data_hash()
        assert base.data_hash() == adaptive(max_trials=4096).data_hash()
        assert base.data_hash() == small_spec().data_hash()
        assert base.data_hash() == adaptive(trials=7).data_hash()
        assert base.data_hash() == adaptive(distances=(8, 32)).data_hash()
        assert base.data_hash() == adaptive(ks=(2,)).data_hash()

    def test_data_hash_tracks_stream_identity(self):
        base = adaptive()
        assert base.data_hash() != adaptive(seed=43).data_hash()
        assert base.data_hash() != adaptive(placement="corner").data_hash()
        assert base.data_hash() != adaptive(horizon=1e5).data_hash()
        assert (
            base.data_hash()
            != adaptive(
                scenario=ScenarioSpec(crash_hazard=0.01), horizon=1e5
            ).data_hash()
        )
        assert (
            base.data_hash()
            != adaptive(algorithm="uniform").data_hash()
        )


class TestAdaptiveExecution:
    def test_stops_at_max_trials_boundary(self):
        result = run_sweep(adaptive(max_trials=64), cache=False)
        assert all(cell.trials == 64 for cell in result)
        assert not result.from_cache

    def test_easy_target_stops_at_min_boundary(self):
        result = run_sweep(
            adaptive(rel_ci=1e6, min_trials=32, max_trials=4096), cache=False
        )
        assert all(cell.trials == 32 for cell in result)

    def test_precision_target_is_reached(self):
        result = run_sweep(
            adaptive(rel_ci=0.2, min_trials=32, max_trials=4096), cache=False
        )
        for cell in result:
            assert cell.summary().rel_ci <= 0.2
            assert cell.trials < 4096

    def test_trials_vary_per_cell(self):
        # Same grid, one precision target: noisy cells get more trials.
        result = run_sweep(
            adaptive(rel_ci=0.08, min_trials=32, max_trials=2048),
            cache=False,
        )
        assert len({cell.trials for cell in result}) >= 1
        assert result.total_trials == sum(c.trials for c in result)

    def test_serial_and_pooled_runs_identical(self):
        spec = adaptive(max_trials=64)
        serial = run_sweep(spec, cache=False)
        pooled = run_sweep(spec, workers=2, cache=False)
        for a, b in zip(serial.cells, pooled.cells):
            assert (a.distance, a.k) == (b.distance, b.k)
            assert np.array_equal(a.times, b.times)

    def test_walker_adaptive_needs_horizon(self):
        with pytest.raises(ValueError):
            run_sweep(
                adaptive(algorithm="random_walk"), cache=False
            )
        result = run_sweep(
            adaptive(
                algorithm="random_walk", distances=(4,), ks=(2,),
                max_trials=32, horizon=500.0,
            ),
            cache=False,
        )
        (cell,) = list(result)
        assert cell.trials == 32

    def test_scenario_adaptive_runs(self):
        result = run_sweep(
            adaptive(
                scenario=ScenarioSpec(crash_hazard=0.01),
                horizon=1e5, max_trials=32,
            ),
            cache=False,
        )
        assert all(cell.trials == 32 for cell in result)


class TestBlockStoreCache:
    def test_top_up_reuses_cached_blocks(self, tmp_path):
        coarse = adaptive(max_trials=64)
        fine = adaptive(max_trials=256)
        first = run_sweep(coarse, cache_dir=str(tmp_path))
        assert all(c.trials == 64 for c in first)
        events = []
        second = run_sweep(
            fine, cache_dir=str(tmp_path), progress=events.append
        )
        assert all(c.trials == 256 for c in second)
        assert not second.from_cache
        # Blocks are append-only: the first 64 trials are reused bitwise.
        for a, b in zip(first.cells, second.cells):
            assert np.array_equal(a.times, b.times[:64])
        assert all(e.new_trials == 192 for e in events)
        assert all(e.source == "topped-up" for e in events)
        # One shared block store, not one file per policy.
        assert _npz_entries(tmp_path) == 1

    def test_top_up_equals_fresh_run(self, tmp_path):
        run_sweep(adaptive(max_trials=64), cache_dir=str(tmp_path))
        topped = run_sweep(adaptive(max_trials=256), cache_dir=str(tmp_path))
        fresh = run_sweep(adaptive(max_trials=256), cache=False)
        for a, b in zip(topped.cells, fresh.cells):
            assert np.array_equal(a.times, b.times)

    def test_satisfied_rerun_is_pure_cache_hit(self, tmp_path):
        spec = adaptive(max_trials=64)
        run_sweep(spec, cache_dir=str(tmp_path))
        events = []
        again = run_sweep(
            spec, cache_dir=str(tmp_path), progress=events.append
        )
        assert again.from_cache
        assert all(e.new_trials == 0 and e.source == "cache" for e in events)

    def test_cells_shared_across_grids(self, tmp_path):
        run_sweep(
            adaptive(distances=(8,), max_trials=64), cache_dir=str(tmp_path)
        )
        events = []
        wider = run_sweep(
            adaptive(distances=(8, 16), max_trials=64),
            cache_dir=str(tmp_path),
            progress=events.append,
        )
        by_cell = {(e.distance, e.k): e for e in events}
        assert by_cell[(8, 1)].new_trials == 0
        assert by_cell[(8, 4)].new_trials == 0
        assert by_cell[(16, 1)].new_trials == 64
        assert not wider.from_cache

    def test_foreign_store_is_ignored(self, tmp_path):
        spec = adaptive(max_trials=32)
        other = adaptive(max_trials=32, seed=7)
        path = block_store_path(spec, str(tmp_path))
        assert path != block_store_path(other, str(tmp_path))
        run_sweep(spec, cache_dir=str(tmp_path))
        # A store whose data identity mismatches the spec loads empty.
        assert load_blocks(other, path) == {}

    def test_corrupt_store_falls_back_to_recompute(self, tmp_path):
        spec = adaptive(max_trials=32)
        path = block_store_path(spec, str(tmp_path))
        os.makedirs(tmp_path, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not an npz")
        result = run_sweep(spec, cache_dir=str(tmp_path))
        assert not result.from_cache
        assert all(c.trials == 32 for c in result)

    def test_ragged_cached_cell_truncates_to_block_boundary(self, tmp_path):
        spec = adaptive(distances=(8,), ks=(1,), max_trials=64)
        path = block_store_path(spec, str(tmp_path))
        honest = run_sweep(spec, cache=False)
        # Hand-write a store holding a 40-trial cell: 32 valid + 8 ragged.
        ragged = np.concatenate(
            [honest.cell(8, 1).times[:32], np.full(8, 1234.5)]
        )
        assert save_blocks(spec, path, {(8, 1): ragged})
        result = run_sweep(spec, cache_dir=str(tmp_path))
        # The ragged tail is discarded, block 1 re-simulated: bitwise
        # equal to the uncached run.
        assert np.array_equal(result.cell(8, 1).times, honest.cell(8, 1).times)

    def test_concurrent_writer_cells_survive(self, tmp_path, monkeypatch):
        """The pre-save re-read keeps a racing sweep's cells.

        Two adaptive sweeps over disjoint grids share one block store
        (same data identity).  If another process finishes while this
        one simulates, its cells must survive the read-modify-write.
        """
        import repro.sweep.runner as runner_mod

        mine = adaptive(distances=(8,), max_trials=32)
        racer = adaptive(distances=(16,), max_trials=32)
        real = runner_mod._execute_block
        state = {"raced": False}

        def racing(payload):
            if not state["raced"]:
                state["raced"] = True
                run_sweep(racer, cache_dir=str(tmp_path))
            return real(payload)

        monkeypatch.setattr(runner_mod, "_execute_block", racing)
        run_sweep(mine, cache_dir=str(tmp_path))
        store = load_blocks(mine, block_store_path(mine, str(tmp_path)))
        assert set(store) == {(8, 1), (8, 4), (16, 1), (16, 4)}

    def test_no_cache_writes_nothing(self, tmp_path):
        run_sweep(adaptive(max_trials=32), cache=False, cache_dir=str(tmp_path))
        assert os.listdir(tmp_path) == []


class TestV1Compatibility:
    def test_hand_written_v1_entry_still_hits(self, tmp_path):
        """A cache entry in the original (pre-block-store) npz layout —
        a ``times`` matrix plus spec/cells metadata, no ``format`` marker
        — must keep serving fixed sweeps byte for byte."""
        spec = small_spec()
        computed = run_sweep(spec, cache=False)
        path = cache_path(spec, str(tmp_path))
        os.makedirs(tmp_path, exist_ok=True)
        meta = {
            "spec": spec.to_dict(),
            "cells": [[c.distance, c.k] for c in computed.cells],
        }
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                meta=np.asarray(json.dumps(meta)),
                times=np.stack([c.times for c in computed.cells]),
            )
        loaded = run_sweep(spec, cache_dir=str(tmp_path))
        assert loaded.from_cache
        for a, b in zip(computed.cells, loaded.cells):
            assert np.array_equal(a.times, b.times)

    def test_v1_entry_is_not_mistaken_for_a_block_store(self, tmp_path):
        spec = adaptive(max_trials=32)
        path = block_store_path(spec, str(tmp_path))
        os.makedirs(tmp_path, exist_ok=True)
        meta = {"spec": spec.to_dict(), "cells": []}
        with open(path, "wb") as handle:
            np.savez_compressed(
                handle,
                meta=np.asarray(json.dumps(meta)),
                times=np.zeros((0, 2)),
            )
        assert load_blocks(spec, path) == {}
        result = run_sweep(spec, cache_dir=str(tmp_path))
        assert all(c.trials == 32 for c in result)

    def test_block_store_roundtrip(self, tmp_path):
        spec = adaptive(max_trials=64)
        path = block_store_path(spec, str(tmp_path))
        blocks = {
            (8, 1): np.arange(32, dtype=np.float64),
            (16, 4): np.arange(64, dtype=np.float64),
        }
        assert save_blocks(spec, path, blocks)
        loaded = load_blocks(spec, path)
        assert set(loaded) == set(blocks)
        for key in blocks:
            assert np.array_equal(loaded[key], blocks[key])


class TestProgressEvents:
    def test_fixed_path_reports_cells(self, tmp_path):
        events = []
        run_sweep(
            small_spec(), cache_dir=str(tmp_path), progress=events.append
        )
        assert len(events) == 4
        assert all(e.source == "computed" for e in events)
        assert all(e.new_trials == e.trials == 20 for e in events)
        cached_events = []
        run_sweep(
            small_spec(), cache_dir=str(tmp_path),
            progress=cached_events.append,
        )
        assert all(e.source == "cache" for e in cached_events)
        assert all(e.new_trials == 0 for e in cached_events)

    def test_event_carries_precision_fields(self):
        events = []
        run_sweep(adaptive(max_trials=32), cache=False, progress=events.append)
        for event in events:
            assert event.trials == 32
            assert math.isfinite(event.ci_halfwidth)
            assert math.isfinite(event.rel_ci)


class TestWallPolicy:
    def test_wall_budget_allocates_and_terminates(self):
        spec = small_spec(
            distances=(8,), ks=(1,),
            budget=BudgetPolicy.wall(0.05, min_trials=32, max_trials=128),
        )
        result = run_sweep(spec, cache=False)
        (cell,) = list(result)
        assert 32 <= cell.trials <= 128
        assert cell.trials in (32, 64, 128)

    def test_wall_budget_hash_distinct(self):
        a = small_spec(budget=BudgetPolicy.wall(1.0))
        b = small_spec(budget=BudgetPolicy.wall(2.0))
        assert a.spec_hash() != b.spec_hash()
        # ...but the block streams are shared.
        assert a.data_hash() == b.data_hash()
