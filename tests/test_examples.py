"""Smoke tests: every example script runs end to end (fast mode)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

CASES = [
    ("quickstart.py", ["24", "8"]),
    ("ant_foraging.py", ["--fast"]),
    ("swarm_robotics.py", ["--fast"]),
    ("adversarial_treasure.py", ["--fast"]),
    ("harmonic_tuning.py", ["--fast"]),
    ("search_gallery.py", []),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_mentions_all_three_algorithms():
    path = os.path.join(EXAMPLES_DIR, "quickstart.py")
    proc = subprocess.run(
        [sys.executable, path, "24", "8"], capture_output=True, text=True, timeout=300
    )
    out = proc.stdout
    assert "Algorithm 3" in out and "Algorithm 1" in out and "Algorithm 2" in out
